"""The intermediate representation shared by both backends.

Corpus programs are written in this IR.  The *native* backend
(:mod:`repro.ropc.nativegen`) compiles IR functions to IA-32 machine
code — that is how corpus binaries are produced, standing in for the
paper's gcc-compiled test programs.  The *ROP* backend
(:mod:`repro.ropc.compiler`) translates an IR function into a ROP chain
over a gadget catalog — that is the paper's verification-code
translation (their prototype modified the ROPC compiler; ours plays the
same role).

IR registers are x86 registers directly (eax, ebx, ecx, edx, esi, edi;
never esp).  Control flow uses labels and conditional branches; both
backends support it, the ROP backend via stack-pivot branching.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from ..x86.registers import EAX, EBP, EBX, ECX, EDI, EDX, ESI, ESP, Register

#: Registers IR code may use.  ebp is reserved as the native backend's
#: frame pointer and esp is the machine stack pointer.
IR_REGS = (EAX, EBX, ECX, EDX, ESI, EDI)

BINOPS = ("add", "sub", "and", "or", "xor", "mul")
SHIFTS = ("shl", "shr", "sar")
CONDITIONS = ("eq", "ne", "lt", "le", "gt", "ge", "ult", "uge")


class IRError(Exception):
    """Malformed IR."""


class Op:
    """Base class: one IR operation."""

    __slots__ = ()

    def regs_used(self) -> Tuple[Register, ...]:
        return tuple(
            getattr(self, slot)
            for slot in self.__slots__
            if isinstance(getattr(self, slot), Register)
        )

    def __repr__(self) -> str:
        fields = ", ".join(
            f"{slot}={getattr(self, slot)!r}" for slot in self.__slots__
        )
        return f"{type(self).__name__}({fields})"


class Label(Op):
    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name


class Const(Op):
    """dst = value"""

    __slots__ = ("dst", "value")

    def __init__(self, dst: Register, value: int):
        self.dst = dst
        self.value = value & 0xFFFFFFFF


class Mov(Op):
    """dst = src"""

    __slots__ = ("dst", "src")

    def __init__(self, dst: Register, src: Register):
        self.dst = dst
        self.src = src


class OHUpdate(Op):
    """mem32[cell] += src — oblivious-hashing state accumulation.

    Lowered to a single ``add [abs32], reg``; exists so the OH baseline
    can instrument functions without spending a register on the hash.
    """

    __slots__ = ("src", "cell")

    def __init__(self, src: Register, cell: int):
        self.src = src
        self.cell = cell & 0xFFFFFFFF


class OHMark(Op):
    """mem32[cell] += value — hashes control-flow path decisions."""

    __slots__ = ("value", "cell")

    def __init__(self, value: int, cell: int):
        self.value = value & 0xFFFFFFFF
        self.cell = cell & 0xFFFFFFFF


class AddConst(Op):
    """dst = dst + value, with the constant encoded as a full imm32.

    Exists for the §IV-B2 immediate-splitting rule: the wide immediate
    is the canvas the planted return opcode lives in, so the backend
    must not shrink it to the imm8 form.
    """

    __slots__ = ("dst", "value")

    def __init__(self, dst: Register, value: int):
        self.dst = dst
        self.value = value & 0xFFFFFFFF


class BinOp(Op):
    """dst = dst <op> src   (two-address)"""

    __slots__ = ("op", "dst", "src")

    def __init__(self, op: str, dst: Register, src: Register):
        if op not in BINOPS:
            raise IRError(f"bad binop {op!r}")
        self.op = op
        self.dst = dst
        self.src = src


class Neg(Op):
    __slots__ = ("dst",)

    def __init__(self, dst: Register):
        self.dst = dst


class Not(Op):
    __slots__ = ("dst",)

    def __init__(self, dst: Register):
        self.dst = dst


class Shift(Op):
    """dst = dst <shl|shr|sar> amount   (constant amount)"""

    __slots__ = ("op", "dst", "amount")

    def __init__(self, op: str, dst: Register, amount: int):
        if op not in SHIFTS:
            raise IRError(f"bad shift {op!r}")
        self.op = op
        self.dst = dst
        self.amount = amount & 0x1F


class Load(Op):
    """dst = mem32[base + disp]"""

    __slots__ = ("dst", "base", "disp")

    def __init__(self, dst: Register, base: Register, disp: int = 0):
        self.dst = dst
        self.base = base
        self.disp = disp


class Store(Op):
    """mem32[base + disp] = src"""

    __slots__ = ("base", "disp", "src")

    def __init__(self, base: Register, src: Register, disp: int = 0):
        self.base = base
        self.src = src
        self.disp = disp


class Load8(Op):
    """dst = zero_extend(mem8[base + disp])"""

    __slots__ = ("dst", "base", "disp")

    def __init__(self, dst: Register, base: Register, disp: int = 0):
        self.dst = dst
        self.base = base
        self.disp = disp


class Store8(Op):
    """mem8[base + disp] = low_byte(src)"""

    __slots__ = ("base", "disp", "src")

    def __init__(self, base: Register, src: Register, disp: int = 0):
        self.base = base
        self.src = src
        self.disp = disp


class Param(Op):
    """dst = i-th stack argument of this function (0-based)"""

    __slots__ = ("dst", "index")

    def __init__(self, dst: Register, index: int):
        self.dst = dst
        self.index = index


class Call(Op):
    """dst = callee(args...)   — native backend only.

    Arguments are registers, pushed right-to-left (cdecl).  eax, ecx and
    edx are caller-clobbered.
    """

    __slots__ = ("dst", "callee", "args")

    def __init__(self, dst: Optional[Register], callee: str, args: Sequence[Register] = ()):
        self.dst = dst
        self.callee = callee
        self.args = tuple(args)


class Syscall(Op):
    """Invoke int 0x80 (number in eax, args in ebx/ecx/edx); eax = result."""

    __slots__ = ()


class Jump(Op):
    __slots__ = ("target",)

    def __init__(self, target: str):
        self.target = target


class Branch(Op):
    """if (a <cond> b) goto target.

    ``b`` may be a register or a small constant.
    """

    __slots__ = ("cond", "a", "b", "target")

    def __init__(self, cond: str, a: Register, b: Union[Register, int], target: str):
        if cond not in CONDITIONS:
            raise IRError(f"bad condition {cond!r}")
        self.cond = cond
        self.a = a
        self.b = b
        self.target = target


class Ret(Op):
    """Return; value (if any) is moved to eax first."""

    __slots__ = ("src",)

    def __init__(self, src: Optional[Register] = None):
        self.src = src


class IRFunction:
    """A function: name, parameter count, and an op list.

    ``leaf`` functions contain no Call ops and are eligible for
    translation to verification ROP chains.
    """

    def __init__(self, name: str, params: int = 0, body: Optional[List[Op]] = None):
        self.name = name
        self.params = params
        self.body: List[Op] = body or []

    # -- builder helpers -------------------------------------------------

    def emit(self, op: Op) -> "IRFunction":
        self.body.append(op)
        return self

    def __iter__(self):
        return iter(self.body)

    def __len__(self) -> int:
        return len(self.body)

    @property
    def is_leaf(self) -> bool:
        return not any(isinstance(op, Call) for op in self.body)

    def labels(self) -> dict:
        """Map of label name -> op index."""
        return {
            op.name: i for i, op in enumerate(self.body) if isinstance(op, Label)
        }

    def op_kinds(self) -> set:
        """Distinct operation types used — the §VII-B diversity metric."""
        kinds = set()
        for op in self.body:
            if isinstance(op, BinOp):
                kinds.add(f"binop:{op.op}")
            elif isinstance(op, Shift):
                kinds.add(f"shift:{op.op}")
            elif isinstance(op, Branch):
                kinds.add(f"branch:{op.cond}")
            else:
                kinds.add(type(op).__name__.lower())
        return kinds

    def validate(self) -> None:
        """Raise :class:`IRError` on structurally broken IR."""
        labels = set()
        for op in self.body:
            if isinstance(op, Label):
                if op.name in labels:
                    raise IRError(f"{self.name}: duplicate label {op.name!r}")
                labels.add(op.name)
        for op in self.body:
            if isinstance(op, (Jump, Branch)) and op.target not in labels:
                raise IRError(f"{self.name}: undefined label {op.target!r}")
            for reg in op.regs_used():
                if reg is ESP or reg is EBP:
                    raise IRError(f"{self.name}: {reg.name} used in IR")
            if isinstance(op, Param) and not 0 <= op.index < self.params:
                raise IRError(
                    f"{self.name}: param index {op.index} out of range"
                )
        if not self.body or not any(isinstance(op, Ret) for op in self.body):
            raise IRError(f"{self.name}: missing ret")

    def __repr__(self) -> str:
        return f"<IRFunction {self.name}({self.params}) {len(self.body)} ops>"
