"""The command-line interface."""

import json

import pytest

from repro.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("wget", "gcc", "lame"):
        assert name in out


def test_run_gzip(capsys):
    assert main(["run", "gzip"]) == 0
    out = capsys.readouterr().out
    assert "exit" in out and "cycles" in out


def test_run_with_debugger_refused(capsys):
    # wget refuses to run under a debugger (exit 99, still a clean exit)
    assert main(["run", "wget", "--debugger"]) == 0
    assert "99" in capsys.readouterr().out


def test_analyze(capsys):
    assert main(["analyze", "gzip"]) == 0
    out = capsys.readouterr().out
    assert "near-ret%" in out and "gzip" in out


def test_unknown_program_rejected():
    with pytest.raises(SystemExit):
        main(["run", "notaprogram"])


@pytest.fixture
def cli_small_wget(monkeypatch, small_wget):
    """Route the CLI's program builder at the fast test corpus."""
    monkeypatch.setattr("repro.cli.build_program", lambda name: small_wget)


def test_protect_json_and_telemetry_files(capsys, tmp_path, cli_small_wget):
    metrics_path = tmp_path / "m.json"
    trace_path = tmp_path / "t.jsonl"
    assert main([
        "protect", "wget", "--json",
        "--metrics", str(metrics_path), "--trace", str(trace_path),
    ]) == 0

    report = json.loads(capsys.readouterr().out)
    assert report["program"] == "wget"
    assert report["behaviour_preserved"] is True
    assert report["chains"] and report["chains"][0]["word_count"] > 0
    assert report["chains"][0]["gadget_addresses"]

    metrics = json.loads(metrics_path.read_text())
    assert metrics["gadgets.offsets_scanned"]["value"] > 0
    assert metrics["protect.chain_words"]["type"] == "histogram"
    assert metrics["protect.chain_words"]["count"] >= 1

    events = [json.loads(l) for l in trace_path.read_text().splitlines()]
    by_name = {e["name"]: e for e in events}
    assert {"protect", "find_gadgets", "compile_chain", "emit_chain"} <= set(by_name)
    # find_gadgets and emit_chain nest under protect
    assert by_name["find_gadgets"]["parent_id"] == by_name["protect"]["span_id"]
    assert by_name["emit_chain"]["parent_id"] == by_name["protect"]["span_id"]


def test_protect_metrics_to_stdout(capsys, cli_small_wget):
    assert main(["protect", "wget", "--metrics", "-"]) == 0
    out = capsys.readouterr().out
    # summary text first, then the metrics JSON object
    payload = json.loads(out[out.index("\n{") :])
    assert "protect.chains_emitted" in payload


def test_profile_prints_cycle_table(capsys, cli_small_wget):
    assert main(["profile", "wget"]) == 0
    out = capsys.readouterr().out
    assert "function" in out and "cycles" in out
    assert "checksum_words" in out
