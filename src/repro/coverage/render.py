"""Annotated-disassembly rendering of a coverage map.

One line per protected instruction, with a guard-depth column and flags
for the two conditions an operator cares about: ``SPOF`` (one chain is
the only guard) and ``UNCOVERED`` (no chain guards the byte at all).
"""

from __future__ import annotations

from typing import List

from ..x86.decoder import DecodeError, decode_all_cached
from .map import CoverageMap


def _depth_glyph(depth: int) -> str:
    if depth == 0:
        return "."
    if depth >= 9:
        return "+"
    return str(depth)


def render_coverage(
    cov: CoverageMap, max_functions: int = 0, max_insns: int = 0
) -> str:
    """Human-readable coverage report with annotated disassembly.

    ``max_functions`` / ``max_insns`` truncate the listing (0 = no
    limit); truncation is always announced, never silent.
    """
    lines: List[str] = [
        f"Coverage map: {cov.program} [{cov.strategy}]",
        f"  protected bytes : {cov.protected_bytes}",
        f"  covered bytes   : {cov.covered_bytes} "
        f"({100 * cov.coverage_fraction:.1f}%)",
        f"  overlap density : {cov.overlap_density:.2f} chains/byte",
        f"  SPOF bytes      : {len(cov.spof_addresses())}",
        f"  uncovered bytes : {cov.protected_bytes - cov.covered_bytes} "
        f"in {len(cov.uncovered_regions())} region(s)",
    ]
    if cov.rule_breakdown:
        breakdown = ", ".join(
            f"{rule}={count}" for rule, count in sorted(cov.rule_breakdown.items())
        )
        lines.append(f"  guarded by rule : {breakdown}")
    chains = ", ".join(cov.chain_names) or "(none)"
    lines.append(f"  chains          : {chains}")

    functions = cov.functions()
    shown = functions if not max_functions else functions[:max_functions]
    for fc in shown:
        lines.append("")
        lines.append(
            f"{fc.name} @{fc.vaddr:#x} ({fc.size} bytes): "
            f"{100 * fc.coverage_fraction:.1f}% covered, "
            f"{fc.spof_bytes} SPOF byte(s), max depth {fc.max_depth}"
        )
        try:
            insns = decode_all_cached(
                cov.image.read(fc.vaddr, fc.size), address=fc.vaddr
            )
        except (DecodeError, IndexError) as exc:
            lines.append(f"  <disassembly unavailable: {exc}>")
            continue
        protected = cov._protected_set
        interesting = [
            insn for insn in insns
            if any(b in protected for b in range(insn.address, insn.end))
        ]
        shown_insns = interesting if not max_insns else interesting[:max_insns]
        for insn in shown_insns:
            span = range(insn.address, insn.address + insn.length)
            glyphs = "".join(_depth_glyph(cov.depth_at(b)) for b in span)
            depths = [cov.depth_at(b) for b in span]
            flags = []
            if any(d == 0 for d in depths):
                flags.append("UNCOVERED")
            elif min(depths) == 1:
                flags.append("SPOF")
            guard_chains = sorted(
                {idx for b in span for idx in cov.chains_at.get(b, ())}
            )
            names = ",".join(cov.chain_names[i] for i in guard_chains)
            flag_text = f"  !{'+'.join(flags)}" if flags else ""
            chain_text = f"  [{names}]" if names else ""
            lines.append(
                f"  {insn.address:#010x}  {glyphs:<8} {insn.text():<28}"
                f"{chain_text}{flag_text}"
            )
        if max_insns and len(interesting) > max_insns:
            lines.append(
                f"  ... {len(interesting) - max_insns} more protected "
                f"instruction(s) truncated"
            )
    if max_functions and len(functions) > max_functions:
        lines.append("")
        lines.append(
            f"... {len(functions) - max_functions} more function(s) truncated"
        )
    return "\n".join(lines)
