"""Content-addressed caching for the protection pipeline.

Protection is referentially transparent: gadget discovery, linear
disassembly and the whole :meth:`Parallax.protect` run are pure
functions of the input bytes and the configuration (every random choice
is derived from ``ProtectConfig.seed``).  This module exploits that to
make repeated ``protect``/benchmark runs skip unchanged programs
entirely:

* keys are SHA-256 digests over a canonical encoding of the inputs
  (section bytes, virtual addresses, finder/config knobs, and a
  per-namespace version stamp so stale entries die on algorithm
  changes);
* every namespace has an **in-memory LRU tier** bounded by entry count
  and **sharded by key space** (:class:`ShardedLRUTier`): each shard
  has its own lock, so concurrent readers/writers of different keys —
  the serving layer's steady state — never contend on one mutex;
* an optional **on-disk tier** (``configure_cache(cache_dir=...)`` or
  the ``REPRO_CACHE_DIR`` environment variable) persists entries across
  processes — this is what makes warm ``protect-all`` reruns and
  parallel workers cheap.  Disk entries live in **per-shard
  directories** (``<ns>/shard-<nn>/``) so concurrent writers spread
  their directory operations; entries from the pre-shard flat layout
  (``<ns>/<key[:2]>/``) are migrated lazily on first read;
* caching is **opt-in per process**: the default manager is disabled
  unless ``REPRO_CACHE_DIR`` is set, so plain library/CLI use is
  untouched; ``configure_cache()`` / ``cache_session()`` (and the
  CLI's ``protect-all --cache-dir``) switch it on;
* hits/misses/stores are counted per namespace in the process-wide
  telemetry registry (``cache.<ns>.hits`` etc.), so ``--metrics``
  output shows exactly what the cache did.

The disk tier is deliberately forgiving: unreadable or truncated
entries are treated as misses and overwritten, never raised.

Correctness stance: a cache hit must be indistinguishable from a
recompute.  Namespaces that return mutable object graphs therefore
either hand out fresh copies per hit (``store_blobs=True`` keeps the
pickled bytes even in memory) or document that callers must not mutate
the cached values.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import Any, Dict, Iterable, Optional, Tuple

from .telemetry import get_metrics

__all__ = [
    "content_key",
    "package_source_digest",
    "shard_index",
    "LRUTier",
    "ShardedLRUTier",
    "DiskTier",
    "ContentCache",
    "CacheManager",
    "get_cache",
    "configure_cache",
    "cache_manager",
    "reset_caches",
    "cache_session",
]

#: Default bound for every in-memory LRU tier.
DEFAULT_MEMORY_ENTRIES = 256

#: Default shard count for both the memory tier's lock striping and the
#: disk tier's per-shard directories.
DEFAULT_SHARDS = 16

#: Sentinel distinguishing "miss" from a cached ``None``.
_MISS = object()

_SOURCE_DIGEST: Optional[str] = None


def package_source_digest() -> str:
    """SHA-256 over every ``.py`` source file of the ``repro`` package.

    The honest cache key for artifacts that depend on *code* rather
    than on explicit input bytes (e.g. corpus programs generated from
    seeds): any source change anywhere in the package invalidates such
    entries automatically, with no version constant to forget to bump.
    Computed once per process.
    """
    global _SOURCE_DIGEST
    if _SOURCE_DIGEST is None:
        root = os.path.dirname(os.path.abspath(__file__))
        digest = hashlib.sha256()
        for directory, _subdirs, files in sorted(os.walk(root)):
            for filename in sorted(files):
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(directory, filename)
                digest.update(os.path.relpath(path, root).encode("utf-8"))
                with open(path, "rb") as fh:
                    digest.update(fh.read())
        _SOURCE_DIGEST = digest.hexdigest()
    return _SOURCE_DIGEST


def _encode_part(part: Any, out: "hashlib._Hash") -> None:
    """Feed one key part into the hash with an unambiguous framing.

    Each part is tagged with its type and length so that, e.g.,
    ``(b"ab", b"c")`` and ``(b"a", b"bc")`` can never collide, and an
    ``int`` can never alias the ``str`` of its digits.
    """
    if isinstance(part, bytes):
        out.update(b"b%d:" % len(part))
        out.update(part)
    elif isinstance(part, bytearray) or isinstance(part, memoryview):
        raw = bytes(part)
        out.update(b"b%d:" % len(raw))
        out.update(raw)
    elif isinstance(part, str):
        raw = part.encode("utf-8")
        out.update(b"s%d:" % len(raw))
        out.update(raw)
    elif isinstance(part, bool):  # before int: bool is an int subclass
        out.update(b"B1:" if part else b"B0:")
    elif isinstance(part, int):
        raw = str(part).encode("ascii")
        out.update(b"i%d:" % len(raw))
        out.update(raw)
    elif isinstance(part, float):
        raw = repr(part).encode("ascii")
        out.update(b"f%d:" % len(raw))
        out.update(raw)
    elif part is None:
        out.update(b"n:")
    elif isinstance(part, (tuple, list)):
        out.update(b"t%d:" % len(part))
        for item in part:
            _encode_part(item, out)
    else:
        raise TypeError(f"unhashable cache key part: {type(part).__name__}")


def content_key(*parts: Any) -> str:
    """SHA-256 hex digest over a canonical encoding of ``parts``.

    Accepts bytes, str, int, bool, float, None and nested
    tuples/lists of those.  Distinct part sequences produce distinct
    digests (up to SHA-256 collisions).
    """
    digest = hashlib.sha256()
    _encode_part(parts, digest)
    return digest.hexdigest()


def shard_index(key: str, shards: int) -> int:
    """Deterministic shard for ``key`` (a SHA-256 hex digest).

    Uses the leading digest bits, so the assignment is stable across
    processes and Python hash randomization — a requirement for the
    disk tier, where the shard is part of the entry's path.
    """
    if shards <= 1:
        return 0
    try:
        return int(key[:8], 16) % shards
    except ValueError:
        # Non-hex keys (tests, ad-hoc callers) still shard stably.
        return int.from_bytes(
            hashlib.sha256(key.encode("utf-8")).digest()[:4], "big"
        ) % shards


class LRUTier:
    """Bounded in-memory key -> value store with LRU eviction."""

    def __init__(self, max_entries: int = DEFAULT_MEMORY_ENTRIES):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: str) -> Any:
        with self._lock:
            if key not in self._entries:
                return _MISS
            self._entries.move_to_end(key)
            return self._entries[key]

    def put(self, key: str, value: Any) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


class ShardedLRUTier:
    """Key-space-sharded LRU store: one lock and one LRU per shard.

    Presents the same ``get``/``put``/``clear`` interface as
    :class:`LRUTier`, but spreads keys over ``shards`` independent
    tiers so concurrent writers of *different* keys — the serving
    layer's steady state under load — take different locks.  The total
    entry bound is preserved by giving each shard
    ``ceil(max_entries / shards)`` slots.
    """

    def __init__(
        self,
        max_entries: int = DEFAULT_MEMORY_ENTRIES,
        shards: int = DEFAULT_SHARDS,
    ):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.shards = shards
        per_shard = max(1, -(-max_entries // shards))
        self._tiers = [LRUTier(per_shard) for _ in range(shards)]

    def _tier(self, key: str) -> LRUTier:
        return self._tiers[shard_index(key, self.shards)]

    def get(self, key: str) -> Any:
        return self._tier(key).get(key)

    def put(self, key: str, value: Any) -> None:
        self._tier(key).put(key, value)

    def __len__(self) -> int:
        return sum(len(tier) for tier in self._tiers)

    def __contains__(self, key: str) -> bool:
        return key in self._tier(key)

    def clear(self) -> None:
        for tier in self._tiers:
            tier.clear()


class DiskTier:
    """Pickle-per-entry on-disk store with per-shard directories.

    Entries live under ``<root>/<namespace>/shard-<nn>/<key>.pkl``
    where ``nn`` is :func:`shard_index` of the key, so concurrent
    writers spread directory creation and rename traffic over
    ``shards`` directories instead of contending on one.  Writes are
    atomic (temp file + ``os.replace``), which is the whole same-key
    story: any number of processes may race one key and the directory
    ends up with exactly one valid entry — the last rename wins, and a
    reader sees either a complete old blob or a complete new one,
    never a torn mix.  Reads treat any malformed entry as a miss.

    Entries written by the pre-shard flat layout
    (``<root>/<namespace>/<key[:2]>/<key>.pkl``) are found on read and
    migrated into their shard directory in place
    (``migrations`` counts them); :meth:`migrate_namespace` sweeps a
    whole namespace eagerly.
    """

    def __init__(self, root: str, shards: int = DEFAULT_SHARDS):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.root = root
        self.shards = shards
        #: Entries moved from the legacy flat layout, process-lifetime.
        self.migrations = 0
        os.makedirs(root, exist_ok=True)
        # Per-shard locks serialize only the mkdir memoization — the
        # data plane relies on atomic renames, not locking.
        self._shard_locks = [threading.Lock() for _ in range(shards)]
        self._ready_dirs = set()
        self._ready_lock = threading.Lock()

    def _path(self, namespace: str, key: str) -> str:
        shard = shard_index(key, self.shards)
        return os.path.join(
            self.root, namespace, f"shard-{shard:02x}", key + ".pkl"
        )

    def _legacy_path(self, namespace: str, key: str) -> str:
        return os.path.join(self.root, namespace, key[:2], key + ".pkl")

    def _ensure_dir(self, directory: str, key: str) -> None:
        with self._ready_lock:
            ready = directory in self._ready_dirs
        if ready:
            return
        with self._shard_locks[shard_index(key, self.shards)]:
            os.makedirs(directory, exist_ok=True)
        with self._ready_lock:
            self._ready_dirs.add(directory)

    def _migrate_entry(self, namespace: str, key: str, blob: bytes) -> None:
        """Adopt a legacy flat-layout entry into its shard directory."""
        self.put_blob(namespace, key, blob)
        try:
            os.unlink(self._legacy_path(namespace, key))
        except OSError:
            pass
        self.migrations += 1

    def get_blob(self, namespace: str, key: str) -> Optional[bytes]:
        try:
            with open(self._path(namespace, key), "rb") as fh:
                return fh.read()
        except OSError:
            pass
        # Pre-shard layout fallback: migrate the entry where it lies so
        # pointing a sharded store at an old cache dir keeps every warm
        # entry and converges on the sharded layout as keys are read.
        try:
            with open(self._legacy_path(namespace, key), "rb") as fh:
                blob = fh.read()
        except OSError:
            return None
        self._migrate_entry(namespace, key, blob)
        return blob

    def put_blob(self, namespace: str, key: str, blob: bytes) -> None:
        path = self._path(namespace, key)
        directory = os.path.dirname(path)
        try:
            self._ensure_dir(directory, key)
            fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(blob)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            # Cache writes are best-effort: a full or read-only disk
            # must never fail the protection run itself.
            pass

    def migrate_namespace(self, namespace: str) -> int:
        """Eagerly move every legacy flat-layout entry into its shard.

        Returns the number of entries migrated.  Safe to run while
        other processes read/write the namespace: moves are atomic
        renames and an entry is readable from one layout or the other
        at every instant.
        """
        base = os.path.join(self.root, namespace)
        moved = 0
        try:
            subdirs = sorted(os.listdir(base))
        except OSError:
            return 0
        for sub in subdirs:
            if sub.startswith("shard-"):
                continue
            legacy_dir = os.path.join(base, sub)
            if not os.path.isdir(legacy_dir):
                continue
            for name in sorted(os.listdir(legacy_dir)):
                if not name.endswith(".pkl"):
                    continue
                key = name[: -len(".pkl")]
                target = self._path(namespace, key)
                self._ensure_dir(os.path.dirname(target), key)
                try:
                    os.replace(os.path.join(legacy_dir, name), target)
                except OSError:
                    continue
                self.migrations += 1
                moved += 1
            try:
                os.rmdir(legacy_dir)
            except OSError:
                pass
        return moved

    def entry_count(self, namespace: Optional[str] = None) -> int:
        count = 0
        roots = (
            [os.path.join(self.root, namespace)] if namespace else [self.root]
        )
        for root in roots:
            for _dir, _subdirs, files in os.walk(root):
                count += sum(1 for f in files if f.endswith(".pkl"))
        return count


class ContentCache:
    """One namespace of the content-addressed cache.

    Args:
        namespace: short name; becomes part of disk paths and metric
            names (``cache.<namespace>.hits`` ...).
        memory: the in-memory LRU tier (always present).
        disk: optional shared :class:`DiskTier`.
        store_blobs: keep pickled bytes in the memory tier and
            deserialize on every hit, so each hit returns a fresh object
            graph (required when callers may mutate the result, e.g.
            protected images).
        use_disk: gate allowing a namespace to opt out of the disk tier
            even when one is configured (e.g. decode results whose
            object graphs are cheap to rebuild but heavy to pickle).
    """

    def __init__(
        self,
        namespace: str,
        memory: Optional[LRUTier] = None,
        disk: Optional[DiskTier] = None,
        store_blobs: bool = False,
        use_disk: bool = True,
    ):
        self.namespace = namespace
        self.memory = memory if memory is not None else LRUTier()
        self.disk = disk
        self.store_blobs = store_blobs
        self.use_disk = use_disk

    # -- metrics --------------------------------------------------------

    def _count(self, event: str, amount: int = 1) -> None:
        get_metrics().counter(f"cache.{self.namespace}.{event}").inc(amount)

    # -- lookup/store ---------------------------------------------------

    def get(self, key: str) -> Tuple[bool, Any]:
        """Return ``(hit, value)``; ``value`` is None on a miss."""
        entry = self.memory.get(key)
        if entry is not _MISS:
            self._count("hits")
            self._count("memory_hits")
            if self.store_blobs:
                return True, pickle.loads(entry)
            return True, entry
        if self.disk is not None and self.use_disk:
            migrations = self.disk.migrations
            blob = self.disk.get_blob(self.namespace, key)
            if self.disk.migrations != migrations:
                self._count("disk_migrated", self.disk.migrations - migrations)
            if blob is not None:
                try:
                    value = pickle.loads(blob)
                except Exception:
                    self._count("disk_corrupt")
                else:
                    self.memory.put(key, blob if self.store_blobs else value)
                    self._count("hits")
                    self._count("disk_hits")
                    return True, value
        self._count("misses")
        return False, None

    def put(self, key: str, value: Any) -> None:
        blob = None
        if self.store_blobs or (self.disk is not None and self.use_disk):
            blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        self.memory.put(key, blob if self.store_blobs else value)
        if self.disk is not None and self.use_disk and blob is not None:
            self.disk.put_blob(self.namespace, key, blob)
        self._count("stores")

    def get_or_compute(self, key: str, compute):
        """``compute()`` on miss, store, and return the value."""
        hit, value = self.get(key)
        if hit:
            return value
        value = compute()
        self.put(key, value)
        return value


class CacheManager:
    """Process-wide registry of namespaces sharing one configuration."""

    #: Namespaces whose values are only safe/worthwhile in memory
    #: (decoded instruction lists are mutated lazily by the emulator's
    #: cost model and dwarf their own pickles).
    MEMORY_ONLY = frozenset({"decode"})

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        memory_entries: int = DEFAULT_MEMORY_ENTRIES,
        enabled: bool = True,
        shards: int = DEFAULT_SHARDS,
    ):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.memory_entries = memory_entries
        self.enabled = enabled
        self.shards = shards
        self.disk = DiskTier(cache_dir, shards=shards) if cache_dir else None
        self._caches: Dict[str, ContentCache] = {}
        self._lock = threading.Lock()

    @property
    def cache_dir(self) -> Optional[str]:
        return self.disk.root if self.disk is not None else None

    def get(self, namespace: str, store_blobs: bool = False) -> ContentCache:
        with self._lock:
            cache = self._caches.get(namespace)
            if cache is None:
                cache = ContentCache(
                    namespace,
                    memory=ShardedLRUTier(self.memory_entries, self.shards),
                    disk=self.disk,
                    store_blobs=store_blobs,
                    use_disk=namespace not in self.MEMORY_ONLY,
                )
                self._caches[namespace] = cache
            return cache

    def clear_memory(self) -> None:
        with self._lock:
            for cache in self._caches.values():
                cache.memory.clear()


# Process-wide caching is opt-in: a bare import must never change
# observable behaviour (telemetry counters, object identity) of code
# that protects twice in one process.  Setting REPRO_CACHE_DIR — or
# calling configure_cache()/cache_session() — turns it on.
_ENV_CACHE_DIR = os.environ.get("REPRO_CACHE_DIR") or None
_manager = CacheManager(cache_dir=_ENV_CACHE_DIR, enabled=_ENV_CACHE_DIR is not None)


def cache_manager() -> CacheManager:
    """The process-wide cache manager."""
    return _manager


def configure_cache(
    cache_dir: Optional[str] = None,
    memory_entries: int = DEFAULT_MEMORY_ENTRIES,
    enabled: bool = True,
    shards: int = DEFAULT_SHARDS,
) -> CacheManager:
    """Replace the process-wide cache manager; returns the new one.

    ``cache_dir=None`` keeps caching purely in-memory; ``enabled=False``
    turns every lookup into a recompute (used by the differential tests
    to prove cached and uncached runs are byte-identical).
    """
    global _manager
    _manager = CacheManager(
        cache_dir=cache_dir,
        memory_entries=memory_entries,
        enabled=enabled,
        shards=shards,
    )
    return _manager


def reset_caches() -> None:
    """Drop every in-memory entry (the disk tier is left alone)."""
    _manager.clear_memory()


def get_cache(namespace: str, store_blobs: bool = False) -> Optional[ContentCache]:
    """The namespace cache, or ``None`` when caching is disabled."""
    if not _manager.enabled:
        return None
    return _manager.get(namespace, store_blobs=store_blobs)


@contextmanager
def cache_session(
    cache_dir: Optional[str] = None,
    memory_entries: int = DEFAULT_MEMORY_ENTRIES,
    enabled: bool = True,
    shards: int = DEFAULT_SHARDS,
):
    """Scoped cache manager for tests; restores the previous one."""
    global _manager
    previous = _manager
    _manager = CacheManager(
        cache_dir=cache_dir,
        memory_entries=memory_entries,
        enabled=enabled,
        shards=shards,
    )
    try:
        yield _manager
    finally:
        _manager = previous
