"""Job bodies for the serving layer: picklable, batched, pure.

The asyncio front-end never touches the protection pipeline itself; it
ships small task dicts to the worker pool and gets JSON-ready payload
dicts back.  Everything here is module-level so the tasks pickle under
both ``fork`` and ``spawn`` start methods, and everything is a pure
function of the task dict — which is what makes the serve-level cache
and single-flight sound.

Batching: :func:`execute_batch` runs a list of tasks in one pool
dispatch, amortizing the per-task IPC/pickle round trip when the
admission queue is deep.  One failing job yields an ``error`` payload
for that job only; it never poisons its batchmates.
"""

from __future__ import annotations

import base64
from typing import Any, Dict, List, Optional

from ..cache import content_key, package_source_digest
from ..core import Parallax, ProtectConfig, STRATEGIES
from ..core.protector import PROTECT_CACHE_VERSION
from ..corpus import PROGRAM_NAMES, build_program_cached

__all__ = [
    "JOB_KINDS",
    "SERVE_CACHE_VERSION",
    "make_task",
    "job_key",
    "job_config",
    "execute_job",
    "execute_batch",
]

JOB_KINDS = ("protect", "verify", "attack-matrix")

#: Bump when serve payload contents change for identical inputs, so
#: cached responses from an older serving layer are never replayed.
SERVE_CACHE_VERSION = 1

#: Emulation budget for verify / attack jobs (full runs, not chains).
DEFAULT_MAX_STEPS = 50_000_000


class JobValidationError(ValueError):
    """A request named an unknown kind/program/strategy."""


def make_task(
    kind: str,
    program: str,
    strategy: str = "cleartext",
    seed: int = 0,
    guard_chains: bool = False,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> Dict[str, Any]:
    """Validate and canonicalize one job into its task dict."""
    if kind not in JOB_KINDS:
        raise JobValidationError(
            f"unknown job kind {kind!r} (expected one of {', '.join(JOB_KINDS)})"
        )
    if program not in PROGRAM_NAMES:
        raise JobValidationError(
            f"unknown program {program!r} "
            f"(expected one of {', '.join(PROGRAM_NAMES)})"
        )
    if strategy not in STRATEGIES:
        raise JobValidationError(
            f"unknown strategy {strategy!r} "
            f"(expected one of {', '.join(STRATEGIES)})"
        )
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise JobValidationError("seed must be an integer")
    if not isinstance(max_steps, int) or max_steps < 1:
        raise JobValidationError("max_steps must be a positive integer")
    return {
        "kind": kind,
        "program": program,
        "strategy": strategy,
        "seed": seed,
        "guard_chains": bool(guard_chains),
        "max_steps": max_steps,
    }


def job_config(task: Dict[str, Any]) -> ProtectConfig:
    """The :class:`ProtectConfig` a task resolves to (pipeline parity:
    the §VII-B selection converges on ``digest_<name>`` for every
    corpus program, same as ``pipeline.config_for_program``)."""
    return ProtectConfig(
        strategy=task["strategy"],
        verification_functions=[f"digest_{task['program']}"],
        seed=task["seed"],
        guard_chains=task["guard_chains"],
    )


def job_key(task: Dict[str, Any]) -> str:
    """Content key for the serve-level response cache + single-flight.

    Keys on the full task plus the protect-cache version and the
    package source digest: responses depend on the pipeline's *code*
    as well as its inputs, and the source digest orphans stale entries
    across code changes with no constant to forget to bump.
    """
    return content_key(
        "serve",
        SERVE_CACHE_VERSION,
        PROTECT_CACHE_VERSION,
        package_source_digest(),
        task["kind"],
        task["program"],
        task["strategy"],
        task["seed"],
        task["guard_chains"],
        task["max_steps"],
    )


def _protect(task: Dict[str, Any]):
    program = build_program_cached(task["program"])
    protected = Parallax(job_config(task)).protect(program)
    return program, protected


def _protect_payload(task: Dict[str, Any]) -> Dict[str, Any]:
    _program, protected = _protect(task)
    artifact = protected.image.canonical_bytes()
    return {
        "kind": "protect",
        "program": task["program"],
        "strategy": task["strategy"],
        "seed": task["seed"],
        "fingerprint": protected.image.fingerprint(),
        "artifact_b64": base64.b64encode(artifact).decode("ascii"),
        "artifact_bytes": len(artifact),
        "chains": len(protected.report.chains),
        "report": protected.report.to_dict(),
    }


def _verify_payload(task: Dict[str, Any]) -> Dict[str, Any]:
    program, protected = _protect(task)
    baseline = program.run(max_steps=task["max_steps"])
    run = protected.run(max_steps=task["max_steps"])
    preserved = (
        not run.crashed
        and run.stdout == baseline.stdout
        and run.exit_status == baseline.exit_status
    )
    return {
        "kind": "verify",
        "program": task["program"],
        "strategy": task["strategy"],
        "seed": task["seed"],
        "fingerprint": protected.image.fingerprint(),
        "behaviour_preserved": preserved,
        "baseline": {
            "exit_status": baseline.exit_status,
            "steps": baseline.steps,
            "cycles": baseline.cycles,
        },
        "protected": {
            "exit_status": run.exit_status,
            "steps": run.steps,
            "cycles": run.cycles,
            "crashed": run.crashed,
        },
        "overhead_percent": (
            round(100 * (run.cycles / baseline.cycles - 1), 4)
            if baseline.cycles
            else None
        ),
    }


def _attack_matrix_payload(task: Dict[str, Any]) -> Dict[str, Any]:
    from ..attacks import evaluate_patch_attack, evaluate_wurster_attack
    from ..attacks.patching import corrupt_byte

    program, protected = _protect(task)
    goal = program.run(max_steps=task["max_steps"])
    image = protected.image
    target = next(
        addr
        for addr in protected.report.chains[0].gadget_addresses
        if image.section_at(addr).name == ".text"
    )
    patch = corrupt_byte(image, target)
    static = evaluate_patch_attack(image, [patch], goal, "static")
    wurster = evaluate_wurster_attack(image, [patch], goal, "wurster")
    return {
        "kind": "attack-matrix",
        "program": task["program"],
        "strategy": task["strategy"],
        "seed": task["seed"],
        "target": target,
        "all_detected": static.detected and wurster.detected,
        "attacks": {
            "static": static.to_dict(),
            "wurster": wurster.to_dict(),
        },
    }


_EXECUTORS = {
    "protect": _protect_payload,
    "verify": _verify_payload,
    "attack-matrix": _attack_matrix_payload,
}


def execute_job(task: Dict[str, Any]) -> Dict[str, Any]:
    """Run one task to its JSON-ready payload (raises on failure)."""
    return _EXECUTORS[task["kind"]](task)


def execute_batch(tasks: List[Dict[str, Any]]) -> List[Optional[Dict[str, Any]]]:
    """Run a batch of tasks in one pool dispatch, order-preserving.

    A failing job produces ``{"error": ..., "kind": ...}`` in its slot
    instead of raising, so batchmates still get their results.
    """
    payloads: List[Optional[Dict[str, Any]]] = []
    for task in tasks:
        try:
            payloads.append(execute_job(task))
        except Exception as exc:  # noqa: BLE001 — shipped to the waiter
            payloads.append(
                {
                    "error": f"{type(exc).__name__}: {exc}",
                    "kind": task.get("kind", "?"),
                    "program": task.get("program", "?"),
                }
            )
    return payloads
