"""Flight recorder: a bounded, structured event journal.

Where the metrics registry aggregates (how many blocks were compiled)
and the tracer times regions (how long did ``protect`` take), the
flight recorder answers *what happened, in order* — the last N
discrete events across every subsystem, cheap enough to leave running
and small enough to dump whole on a crash.

Event kinds recorded by the instrumented subsystems:

========================  =============================================
``protect``               one program protected (protector)
``rewrite``               one binary analyzed/rewritten (rewrite engine)
``chain_dispatch``        a verification chain entered a gadget
                          (chain tracer; only while one is installed)
``chain_corruption``      a dying chain attributed to a gadget
``block_compile``         the block engine compiled a superblock
``block_invalidate``      a superblock was discarded (``tier`` names
                          which coherence tier caught it: ``page`` for
                          the per-page write-version compare, ``store``
                          for an in-block self-modifying store)
``attack``                one attack evaluation scored
========================  =============================================

Design constraints (mirroring :mod:`repro.telemetry.metrics`):

* **Bounded.**  Events live in a ring (``collections.deque`` with
  ``maxlen``); the newest ``capacity`` events are kept and ``dropped``
  counts the overwritten ones.  The journal can never grow without
  bound, so it is safe to leave enabled in long runs.
* **Near-zero when disabled.**  The process-wide recorder starts
  disabled; :meth:`FlightRecorder.record` returns immediately and hot
  call sites additionally guard with ``if recorder.enabled`` so the
  disabled cost is one attribute load.  Nothing is retained.
* **Monotonic timestamps.**  Events carry :func:`time.perf_counter`
  offsets from the recorder's creation, plus one wall-clock anchor
  (``start_wall``) so exports can be correlated with span traces.
"""

from __future__ import annotations

import json
import time
from collections import deque
from typing import Any, Dict, Iterator, List, Optional

from .metrics import _ensure_parent_dir

__all__ = ["FlightRecorder", "get_recorder", "set_recorder"]


class FlightRecorder:
    """Ring-buffered structured event journal."""

    #: Default ring capacity (events retained).
    DEFAULT_CAPACITY = 8192

    __slots__ = ("enabled", "capacity", "start_wall", "_t0", "_events", "_seq")

    def __init__(self, capacity: int = DEFAULT_CAPACITY, enabled: bool = True):
        if capacity < 1:
            raise ValueError("recorder capacity must be >= 1")
        self.enabled = enabled
        self.capacity = capacity
        self.start_wall = time.time()
        self._t0 = time.perf_counter()
        self._events: deque = deque(maxlen=capacity)
        self._seq = 0

    # -- recording ------------------------------------------------------

    def record(self, kind: str, **fields: Any) -> None:
        """Append one event; no-op while disabled.

        ``fields`` must be JSON-serializable; ``seq``, ``ts`` and
        ``kind`` are reserved names.
        """
        if not self.enabled:
            return
        self._seq += 1
        self._events.append(
            (self._seq, time.perf_counter() - self._t0, kind, fields)
        )

    # -- introspection --------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    @property
    def dropped(self) -> int:
        """Events overwritten by the ring since creation/clear."""
        return self._seq - len(self._events)

    def kinds(self) -> Dict[str, int]:
        """Event count per kind among the retained events."""
        out: Dict[str, int] = {}
        for _, _, kind, _ in self._events:
            out[kind] = out.get(kind, 0) + 1
        return out

    def clear(self) -> None:
        self._events.clear()
        self._seq = 0

    # -- export ---------------------------------------------------------

    def iter_events(self) -> Iterator[dict]:
        for seq, ts, kind, fields in self._events:
            event = {"type": "event", "seq": seq, "ts": round(ts, 9), "kind": kind}
            event.update(fields)
            yield event

    def to_events(self) -> List[dict]:
        """Retained events, oldest first, as JSON-ready dicts."""
        return list(self.iter_events())

    def summary(self) -> dict:
        return {
            "type": "journal_summary",
            "recorded": self._seq,
            "retained": len(self._events),
            "dropped": self.dropped,
            "capacity": self.capacity,
            "start_wall": self.start_wall,
            "kinds": self.kinds(),
        }

    def dump(self, fh) -> None:
        """Write the journal (events + summary) as JSONL to ``fh``.

        Used for on-demand dumps and crash dumps alike — the CLI calls
        this from a ``finally`` so a faulting run still leaves its
        journal behind.
        """
        for event in self.iter_events():
            fh.write(json.dumps(event, sort_keys=True))
            fh.write("\n")
        fh.write(json.dumps(self.summary(), sort_keys=True))
        fh.write("\n")

    def write_jsonl(self, path: str) -> None:
        _ensure_parent_dir(path)
        with open(path, "w") as fh:
            self.dump(fh)

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return (
            f"<FlightRecorder {state}, {len(self._events)}/{self.capacity} "
            f"events, {self.dropped} dropped>"
        )


#: Process-wide recorder; starts disabled, like the registry and tracer.
_recorder = FlightRecorder(enabled=False)


def get_recorder() -> FlightRecorder:
    """The process-wide flight recorder (disabled until configured)."""
    return _recorder


def set_recorder(recorder: FlightRecorder) -> FlightRecorder:
    global _recorder
    previous, _recorder = _recorder, recorder
    return previous
