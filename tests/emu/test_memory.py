"""Paged memory and the instruction/data split view."""

import pytest

from repro.emu import BadMemoryAccess, Memory


def test_map_read_write_roundtrip():
    mem = Memory()
    mem.map(0x1000, b"hello world")
    assert mem.read(0x1000, 11) == b"hello world"
    mem.write(0x1002, b"XY")
    assert mem.read(0x1000, 5) == b"heXYo"


def test_cross_page_access():
    mem = Memory()
    mem.map(0xFFC, b"\x01\x02\x03\x04\x05\x06\x07\x08")
    assert mem.read_u32(0xFFE) == 0x06050403
    mem.write_u32(0xFFE, 0xAABBCCDD)
    assert mem.read(0xFFC, 8) == b"\x01\x02\xdd\xcc\xbb\xaa\x07\x08"


def test_unmapped_access_raises():
    mem = Memory()
    with pytest.raises(BadMemoryAccess):
        mem.read(0x5000, 1)
    with pytest.raises(BadMemoryAccess):
        mem.write(0x5000, b"\x00")


def test_icache_split_view():
    """The Wurster primitive: fetch sees the patch, reads do not."""
    mem = Memory()
    mem.map(0x1000, b"\xc3\xc3\xc3\xc3")
    mem.patch_code_view(0x1001, b"\x90")
    assert mem.read(0x1000, 4) == b"\xc3\xc3\xc3\xc3"      # data view pristine
    assert mem.fetch(0x1000, 4) == b"\xc3\x90\xc3\xc3"     # fetch tampered
    assert mem.code_view_dirty
    mem.clear_code_view()
    assert mem.fetch(0x1000, 4) == b"\xc3\xc3\xc3\xc3"
    assert not mem.code_view_dirty


def test_page_versions_bump_on_write():
    mem = Memory()
    mem.map(0x1000, b"\x00" * 8)
    v0 = mem.page_version(0x1000)
    mem.write_u8(0x1004, 7)
    assert mem.page_version(0x1000) > v0
    v1 = mem.page_version(0x1000)
    mem.patch_code_view(0x1000, b"\x90")
    assert mem.page_version(0x1000) > v1


def test_fetch_window_clamps_at_unmapped():
    mem = Memory()
    mem.map_zero(0x1000, 0x1000)
    window = mem.fetch_window(0x1FFA, 16)
    assert len(window) == 6


# ----------------------------------------------------------------------
# Flat segments (the block engine's fast paths)
# ----------------------------------------------------------------------

def test_fresh_map_installs_flat_segment():
    mem = Memory()
    mem.map(0x1000, bytes(range(64)))
    assert mem._seg_by_page.get(1) is not None
    before = mem.fast_loads
    assert mem.read_u32(0x1004) == 0x07060504
    assert mem.fast_loads == before + 1
    before = mem.fast_stores
    mem.write_u32(0x1008, 0xAABBCCDD)
    assert mem.fast_stores == before + 1
    assert mem.read(0x1008, 4) == b"\xdd\xcc\xbb\xaa"


def test_segment_and_paged_views_stay_coherent():
    """Segment word accessors and byte-wise paged accessors must see the
    same backing store (the memoryview write-through installation)."""
    mem = Memory()
    mem.map(0x2000, bytes(16))
    mem.write_u32(0x2004, 0x11223344)      # segment fast path
    assert mem.read_u8(0x2004) == 0x44     # byte path, same bytes
    mem.write_u8(0x2007, 0x99)             # byte path
    assert mem.read_u32(0x2004) == 0x99223344


def test_map_overlapping_existing_pages_bulk_copies():
    mem = Memory()
    mem.map(0x1000, b"\xAA" * 0x1800)       # spans pages 1 and 2
    mem.map(0x1800, b"\xBB" * 0x1000)       # overlaps both, page-straddling
    assert mem.read(0x17FC, 8) == b"\xAA" * 4 + b"\xBB" * 4
    assert mem.read(0x27FC, 4) == b"\xBB" * 4


def test_map_zero_versioned_flag():
    mem = Memory()
    mem.map_zero(0x10000, 0x1000)                    # stack-style region
    mem.map_zero(0x20000, 0x1000, versioned=True)    # heap-style region
    assert not mem.page_is_versioned(0x10000)
    assert mem.page_is_versioned(0x20000)
    # unmapped pages count as versioned (nothing to go stale)
    assert mem.page_is_versioned(0x90000)


def test_write_epoch_skips_unversioned_pages():
    mem = Memory()
    mem.map(0x1000, bytes(16))
    mem.map_zero(0x10000, 0x1000)
    epoch = mem.write_epoch
    mem.write_u32(0x10000, 1)       # stack store: no epoch bump
    mem.write_u8(0x10004, 2)
    assert mem.write_epoch == epoch
    assert mem.page_version(0x10000) == 0
    mem.write_u8(0x1000, 3)         # versioned store: epoch moves
    assert mem.write_epoch > epoch
    epoch = mem.write_epoch
    mem.write_u32(0x1004, 4)
    assert mem.write_epoch > epoch


def test_unaligned_segment_access_crossing_pages():
    mem = Memory()
    mem.map(0x1000, bytes(0x2000))  # one segment spanning two pages
    mem.write_u32(0x1FFE, 0xDEADBEEF)
    assert mem.read_u32(0x1FFE) == 0xDEADBEEF
    # both spanned pages must have their versions bumped
    assert mem.page_version(0x1000) > 0
    assert mem.page_version(0x2000) > 0
