"""The IA-32 emulator.

Executes binary images instruction by instruction, counting cycles with a
simple per-opcode cost model.  ROP chains need no special support: the
genuine ``ret`` semantics (pop eip from the stack) execute them exactly
as real hardware would.

The fetch path reads the *instruction view* of memory
(:meth:`repro.emu.memory.Memory.fetch`), while loads/stores use the data
view — this is what makes the Wurster attack expressible.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..binary.image import BinaryImage
from ..x86.decoder import decode
from ..x86.errors import DecodeError
from ..x86.instruction import Instruction
from ..x86.operands import Imm, Mem, Rel, to_signed
from ..x86.registers import Register
from .cpu import CPUState, MASK32
from .errors import (
    BadFetch,
    BadMemoryAccess,
    DivideError,
    EmulationError,
    Halted,
    StepLimitExceeded,
)
from .memory import Memory
from .syscalls import ExitProgram, OperatingSystem

#: Return-address sentinel used by ``call_function``; never mapped.
CALL_SENTINEL = 0xDEAD0000

#: Conditional-jump mnemonics (hot-path dispatch set).
_JCC = frozenset(
    {
        "jo", "jno", "jb", "jae", "je", "jne", "jbe", "ja",
        "js", "jns", "jp", "jnp", "jl", "jge", "jle", "jg",
    }
)

#: Cycle cost per mnemonic (default 1); memory operands add 1 each.
CYCLE_COSTS = {
    "mul": 4,
    "imul": 4,
    "div": 24,
    "idiv": 24,
    "call": 2,
    "ret": 2,
    "retf": 3,
    "pushad": 8,
    "popad": 8,
    "leave": 2,
    "int": 60,
}

#: Extra cycles when a return's target does not match the shadow
#: return-address stack — the branch-predictor miss that makes ROP
#: chains an order of magnitude slower than straight code on real
#: hardware.  Calls/returns in ordinary code pair up and stay cheap.
RET_MISPREDICT_PENALTY = 18

#: Depth of the modelled return-stack buffer (typical hardware: 16).
RAS_DEPTH = 16

_STACK_TOP_DEFAULT = 0x00C0_0000
_STACK_SIZE_DEFAULT = 0x4_0000


class RunResult:
    """Outcome of a completed emulation run."""

    __slots__ = ("exit_status", "steps", "cycles", "stdout", "fault")

    def __init__(self, exit_status, steps, cycles, stdout, fault=None):
        self.exit_status = exit_status
        self.steps = steps
        self.cycles = cycles
        self.stdout = stdout
        self.fault = fault

    @property
    def crashed(self) -> bool:
        return self.fault is not None

    def __repr__(self) -> str:
        if self.crashed:
            return f"<RunResult FAULT {self.fault!r} steps={self.steps}>"
        return (
            f"<RunResult exit={self.exit_status} steps={self.steps} "
            f"cycles={self.cycles}>"
        )


class Emulator:
    """Executes one process image.

    Args:
        image: the program to load; all sections are mapped at their
            virtual addresses.
        os: toy OS instance (fresh one created if omitted).
        stack_top: initial esp (grows down).
        max_steps: instruction budget; exceeded → :class:`StepLimitExceeded`.
    """

    def __init__(
        self,
        image: Optional[BinaryImage] = None,
        os: Optional[OperatingSystem] = None,
        stack_top: int = _STACK_TOP_DEFAULT,
        max_steps: int = 5_000_000,
    ):
        self.memory = Memory()
        self.cpu = CPUState()
        self.os = os if os is not None else OperatingSystem()
        self.image = image
        self.max_steps = max_steps
        self.steps = 0
        self.cycles = 0
        self.ret_mispredicts = 0
        self._ras = []  # shadow return-address stack (branch predictor)
        #: optional per-step callback(eip, instruction) for profilers
        self.trace_hook: Optional[Callable[[int, Instruction], None]] = None
        self._decode_cache = {}

        self.memory.map_zero(stack_top - _STACK_SIZE_DEFAULT, _STACK_SIZE_DEFAULT)
        self.cpu.esp = stack_top - 64

        if image is not None:
            for section in image.sections:
                self.memory.map(section.vaddr, bytes(section.data))
            self.cpu.eip = image.entry

    # ------------------------------------------------------------------
    # Operand helpers
    # ------------------------------------------------------------------

    def _effective_address(self, mem: Mem) -> int:
        addr = mem.disp
        if mem.base is not None:
            addr += self.cpu.get(mem.base)
        if mem.index is not None:
            addr += self.cpu.get(mem.index) * mem.scale
        return addr & MASK32

    def _read_operand(self, op, width: int) -> int:
        if isinstance(op, Register):
            return self.cpu.get(op)
        if isinstance(op, Imm):
            if op.width < width:
                return op.signed & ((1 << width) - 1)
            return op.value
        if isinstance(op, Mem):
            addr = self._effective_address(op)
            try:
                if op.width == 8:
                    return self.memory.read_u8(addr)
                if op.width == 16:
                    return self.memory.read_u16(addr)
                return self.memory.read_u32(addr)
            except BadMemoryAccess as exc:
                raise BadMemoryAccess(str(exc), eip=self.cpu.eip) from exc
        raise EmulationError(f"cannot read operand {op!r}", eip=self.cpu.eip)

    def _write_operand(self, op, value: int) -> None:
        if isinstance(op, Register):
            self.cpu.set(op, value)
            return
        if isinstance(op, Mem):
            addr = self._effective_address(op)
            try:
                if op.width == 8:
                    self.memory.write_u8(addr, value)
                elif op.width == 16:
                    self.memory.write_u16(addr, value)
                else:
                    self.memory.write_u32(addr, value)
            except BadMemoryAccess as exc:
                raise BadMemoryAccess(str(exc), eip=self.cpu.eip) from exc
            return
        raise EmulationError(f"cannot write operand {op!r}", eip=self.cpu.eip)

    @staticmethod
    def _width_of(op) -> int:
        if isinstance(op, (Register, Mem, Imm)):
            return op.width
        return 32

    # ------------------------------------------------------------------
    # Stack helpers
    # ------------------------------------------------------------------

    def push(self, value: int) -> None:
        self.cpu.esp = (self.cpu.esp - 4) & MASK32
        self.memory.write_u32(self.cpu.esp, value)

    def pop(self) -> int:
        value = self.memory.read_u32(self.cpu.esp)
        self.cpu.esp = (self.cpu.esp + 4) & MASK32
        return value

    # ------------------------------------------------------------------
    # Fetch/decode
    # ------------------------------------------------------------------

    def _fetch_decode(self, eip: int) -> Instruction:
        # Decode results are cached per address and invalidated via the
        # memory's per-page write counters, so tampering/self-modifying
        # code is still decoded faithfully.
        version = self.memory.page_version(eip)
        cached = self._decode_cache.get(eip)
        if cached is not None:
            insn, cached_version, end_version = cached
            if cached_version == version and (
                end_version is None
                or end_version == self.memory.page_version(eip + insn.length - 1)
            ):
                return insn

        window = self.memory.fetch_window(eip, 16)
        if not window:
            raise BadFetch(f"fetch from unmapped {eip:#x}", eip=eip)
        try:
            insn = decode(window, 0, address=eip)
        except DecodeError as exc:
            raise BadFetch(
                f"undecodable bytes {window[:8].hex()} at {eip:#x}", eip=eip
            ) from exc
        if len(self._decode_cache) > 1 << 16:
            self._decode_cache.clear()
        end_addr = eip + insn.length - 1
        end_version = (
            self.memory.page_version(end_addr) if (end_addr >> 12) != (eip >> 12) else None
        )
        self._decode_cache[eip] = (insn, version, end_version)
        return insn

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def step(self) -> Instruction:
        """Execute one instruction; returns it."""
        if self.steps >= self.max_steps:
            raise StepLimitExceeded(
                f"exceeded {self.max_steps} steps", eip=self.cpu.eip
            )
        eip = self.cpu.eip
        insn = self._fetch_decode(eip)
        self.steps += 1
        cost = insn.cycle_cost
        if cost is None:
            cost = CYCLE_COSTS.get(insn.mnemonic, 1)
            for op in insn.operands:
                if isinstance(op, Mem):
                    cost += 1
            insn.cycle_cost = cost
        self.cycles += cost
        if self.trace_hook is not None:
            self.trace_hook(eip, insn)
        next_eip = (eip + insn.length) & MASK32
        self.cpu.eip = next_eip
        self._execute(insn)
        return insn

    def run(self) -> RunResult:
        """Run until the program exits (or faults).

        Faults are captured in the result rather than propagated, so the
        attack harness can score "crash" outcomes uniformly.

        Telemetry is recorded only here, at run end — the per-step hot
        path carries no instrumentation, so disabled telemetry costs
        nothing per instruction.
        """
        from ..telemetry import get_metrics, get_tracer

        start_steps = self.steps
        with get_tracer().span("emulate") as span:
            fault = None
            try:
                while True:
                    self.step()
            except ExitProgram:
                pass
            except EmulationError as exc:
                fault = exc
            metrics = get_metrics()
            metrics.counter("emu.runs").inc()
            metrics.counter("emu.instructions").inc(self.steps - start_steps)
            metrics.counter("emu.cycles").inc(self.cycles)
            metrics.counter("emu.ret_mispredicts").inc(self.ret_mispredicts)
            if fault is not None:
                metrics.counter(
                    f"emu.faults.{type(fault).__name__}"
                ).inc()
            span.set_attribute("steps", self.steps - start_steps)
            span.set_attribute("cycles", self.cycles)
            if fault is not None:
                span.set_attribute("fault", type(fault).__name__)
                span.set_attribute(
                    "fault_eip", fault.eip if fault.eip is not None else None
                )
        return RunResult(
            exit_status=self.os.exit_status,
            steps=self.steps,
            cycles=self.cycles,
            stdout=bytes(self.os.stdout),
            fault=fault,
        )

    def call_function(self, vaddr: int, args=(), max_steps: Optional[int] = None):
        """Call a function at ``vaddr`` with cdecl int args; returns eax.

        Raises on fault (unlike :meth:`run`) so unit tests see precise
        errors.
        """
        if max_steps is not None:
            self.max_steps = self.steps + max_steps
        for arg in reversed(args):
            self.push(arg & MASK32)
        self.push(CALL_SENTINEL)
        self.cpu.eip = vaddr
        while self.cpu.eip != CALL_SENTINEL:
            self.step()
        # Caller cleans up arguments, as with cdecl.
        self.cpu.esp = (self.cpu.esp + 4 * len(args)) & MASK32
        return self.cpu.eax

    # ------------------------------------------------------------------
    # Instruction semantics
    # ------------------------------------------------------------------

    def _execute(self, insn: Instruction) -> None:
        m = insn.mnemonic
        ops = insn.operands
        cpu = self.cpu

        if m == "mov":
            value = self._read_operand(ops[1], self._width_of(ops[0]))
            self._write_operand(ops[0], value)
        elif m == "push":
            self.push(self._read_operand(ops[0], 32))
        elif m == "pop":
            value = self.pop()
            self._write_operand(ops[0], value)
        elif m == "ret":
            cpu.eip = self.pop()
            if ops:
                cpu.esp = (cpu.esp + ops[0].value) & MASK32
            self._predict_return(cpu.eip)
        elif m[0] == "j" and m in _JCC:
            if cpu.condition(m[1:]):
                cpu.eip = self._branch_target(ops[0])
        elif m == "call":
            target = self._branch_target(ops[0])
            self.push(cpu.eip)
            if len(self._ras) >= RAS_DEPTH:
                del self._ras[0]
            self._ras.append(cpu.eip)
            cpu.eip = target
        elif m == "jmp":
            cpu.eip = self._branch_target(ops[0])
        elif m in ("add", "adc"):
            width = self._width_of(ops[0])
            a = self._read_operand(ops[0], width)
            b = self._read_operand(ops[1], width)
            carry = int(cpu.cf) if m == "adc" else 0
            self._write_operand(ops[0], cpu.set_add_flags(a, b, carry, width))
        elif m in ("sub", "sbb"):
            width = self._width_of(ops[0])
            a = self._read_operand(ops[0], width)
            b = self._read_operand(ops[1], width)
            borrow = int(cpu.cf) if m == "sbb" else 0
            self._write_operand(ops[0], cpu.set_sub_flags(a, b, borrow, width))
        elif m == "cmp":
            width = self._width_of(ops[0])
            a = self._read_operand(ops[0], width)
            b = self._read_operand(ops[1], width)
            cpu.set_sub_flags(a, b, 0, width)
        elif m in ("and", "or", "xor"):
            width = self._width_of(ops[0])
            a = self._read_operand(ops[0], width)
            b = self._read_operand(ops[1], width)
            result = a & b if m == "and" else (a | b if m == "or" else a ^ b)
            cpu.set_logic_flags(result, width)
            self._write_operand(ops[0], result)
        elif m == "test":
            width = self._width_of(ops[0])
            a = self._read_operand(ops[0], width)
            b = self._read_operand(ops[1], width)
            cpu.set_logic_flags(a & b, width)
        elif m in ("inc", "dec"):
            width = self._width_of(ops[0])
            a = self._read_operand(ops[0], width)
            carry = cpu.cf  # inc/dec preserve CF
            if m == "inc":
                result = cpu.set_add_flags(a, 1, 0, width)
            else:
                result = cpu.set_sub_flags(a, 1, 0, width)
            cpu.cf = carry
            self._write_operand(ops[0], result)
        elif m == "neg":
            width = self._width_of(ops[0])
            a = self._read_operand(ops[0], width)
            result = cpu.set_sub_flags(0, a, 0, width)
            self._write_operand(ops[0], result)
        elif m == "not":
            width = self._width_of(ops[0])
            a = self._read_operand(ops[0], width)
            self._write_operand(ops[0], ~a & ((1 << width) - 1))
        elif m == "lea":
            self._write_operand(ops[0], self._effective_address(ops[1]))
        elif m == "xchg":
            wa, wb = self._width_of(ops[0]), self._width_of(ops[1])
            a = self._read_operand(ops[0], wa)
            b = self._read_operand(ops[1], wb)
            self._write_operand(ops[0], b)
            self._write_operand(ops[1], a)
        elif m in ("shl", "shr", "sar"):
            self._execute_shift(m, ops)
        elif m == "pushad":
            original_esp = cpu.esp
            for code in range(8):
                self.push(original_esp if code == 4 else cpu.regs[code])
        elif m == "popad":
            for code in reversed(range(8)):
                value = self.pop()
                if code != 4:  # esp is popped but discarded
                    cpu.regs[code] = value
        elif m == "leave":
            cpu.esp = cpu.ebp
            cpu.ebp = self.pop()
        elif m == "retf":
            cpu.eip = self.pop()
            self.pop()  # discard code-segment word
            if ops:
                cpu.esp = (cpu.esp + ops[0].value) & MASK32
            self._predict_return(cpu.eip)
        elif m.startswith("set"):
            self._write_operand(ops[0], int(cpu.condition(m[3:])))
        elif m in ("movzx", "movsx"):
            src_width = self._width_of(ops[1])
            value = self._read_operand(ops[1], src_width)
            if m == "movsx":
                value = to_signed(value, src_width) & MASK32
            self._write_operand(ops[0], value)
        elif m in ("mul", "imul"):
            self._execute_multiply(m, ops)
        elif m in ("div", "idiv"):
            self._execute_divide(m, ops)
        elif m == "cdq":
            cpu.regs[2] = MASK32 if cpu.regs[0] & 0x8000_0000 else 0
        elif m == "nop":
            pass
        elif m == "int":
            if ops[0].value == 0x80:
                cpu.regs[0] = self.os.dispatch(self) & MASK32
            else:
                raise EmulationError(
                    f"unhandled software interrupt {ops[0].value:#x}", eip=cpu.eip
                )
        elif m == "int3":
            raise EmulationError("breakpoint trap (int3)", eip=cpu.eip)
        elif m == "hlt":
            raise Halted("hlt executed", eip=cpu.eip)
        else:
            raise EmulationError(f"unimplemented mnemonic {m!r}", eip=cpu.eip)

    def _predict_return(self, target: int) -> None:
        """Charge the return-predictor penalty on RAS mismatch."""
        if self._ras and self._ras[-1] == target:
            self._ras.pop()
            return
        if self._ras:
            self._ras.pop()
        self.ret_mispredicts += 1
        self.cycles += RET_MISPREDICT_PENALTY

    def _branch_target(self, op) -> int:
        if isinstance(op, Rel):
            # Rel targets were resolved against the decode address, which
            # is the current instruction — eip already points past it.
            return op.target & MASK32
        return self._read_operand(op, 32)

    def _execute_shift(self, m: str, ops) -> None:
        cpu = self.cpu
        width = self._width_of(ops[0])
        count = self._read_operand(ops[1], 8) & 0x1F
        value = self._read_operand(ops[0], width)
        if count == 0:
            return
        mask = (1 << width) - 1
        if m == "shl":
            result = (value << count) & mask
            cpu.cf = bool((value >> (width - count)) & 1) if count <= width else False
        elif m == "shr":
            result = (value >> count) & mask
            cpu.cf = bool((value >> (count - 1)) & 1)
        else:  # sar
            signed = to_signed(value, width)
            cpu.cf = bool((signed >> (count - 1)) & 1) if count <= width else signed < 0
            result = (signed >> count) & mask if count < width else (mask if signed < 0 else 0)
        cpu.zf = result == 0
        cpu.sf = bool(result >> (width - 1))
        self._write_operand(ops[0], result)

    def _execute_multiply(self, m: str, ops) -> None:
        cpu = self.cpu
        if m == "imul" and len(ops) == 3:  # imul r32, r/m32, imm
            a = to_signed(self._read_operand(ops[1], 32), 32)
            b = ops[2].signed
            product = a * b
            result = product & MASK32
            cpu.cf = cpu.of = product != to_signed(result, 32)
            self._write_operand(ops[0], result)
        elif m == "imul" and len(ops) == 2:  # imul r32, r/m32
            a = to_signed(self.cpu.get(ops[0]), 32)
            b = to_signed(self._read_operand(ops[1], 32), 32)
            product = a * b
            result = product & MASK32
            cpu.cf = cpu.of = product != to_signed(result, 32)
            self._write_operand(ops[0], result)
        else:  # one-operand mul/imul: edx:eax = eax * op
            width = self._width_of(ops[0])
            if width != 32:
                raise EmulationError("8-bit multiply not supported", eip=cpu.eip)
            a = cpu.regs[0]
            b = self._read_operand(ops[0], 32)
            if m == "imul":
                product = to_signed(a, 32) * to_signed(b, 32)
            else:
                product = a * b
            cpu.regs[0] = product & MASK32
            cpu.regs[2] = (product >> 32) & MASK32
            if m == "imul":
                # CF=OF unless edx:eax is just the sign extension of eax.
                cpu.cf = cpu.of = product != to_signed(product & MASK32, 32)
            else:
                cpu.cf = cpu.of = cpu.regs[2] != 0

    def _execute_divide(self, m: str, ops) -> None:
        cpu = self.cpu
        divisor = self._read_operand(ops[0], 32)
        dividend = (cpu.regs[2] << 32) | cpu.regs[0]
        if m == "idiv":
            divisor = to_signed(divisor, 32)
            dividend = to_signed(dividend, 64)
        if divisor == 0:
            raise DivideError("division by zero", eip=cpu.eip)
        if m == "idiv":
            quotient = int(dividend / divisor)  # truncation toward zero
            remainder = dividend - quotient * divisor
            if not -(1 << 31) <= quotient < (1 << 31):
                raise DivideError("idiv quotient overflow", eip=cpu.eip)
        else:
            quotient, remainder = divmod(dividend, divisor)
            if quotient > MASK32:
                raise DivideError("div quotient overflow", eip=cpu.eip)
        cpu.regs[0] = quotient & MASK32
        cpu.regs[2] = remainder & MASK32


def run_image(
    image: BinaryImage,
    stdin: bytes = b"",
    debugger_attached: bool = False,
    max_steps: int = 5_000_000,
) -> RunResult:
    """Convenience: load ``image`` into a fresh emulator and run it."""
    os = OperatingSystem(stdin=stdin, debugger_attached=debugger_attached)
    emulator = Emulator(image, os=os, max_steps=max_steps)
    return emulator.run()
