"""Emulator throughput: block engine vs. step engine.

Measures instructions/sec for both execution engines on the two
workload shapes the paper's evaluation leans on:

* **chain** — repeated verification-function calls on a protected
  image (fig. 5a's workload: ROP-chain heavy, ret-dominated);
* **program** — whole corpus-program runs (fig. 5b's workload).

Every measurement doubles as a differential check: steps, cycles and
observable outputs must match between engines exactly, and any
mismatch is recorded (and fails the run).

Emits ``BENCH_emulator.json`` next to this file (override with
``--output`` or ``REPRO_BENCH_EMULATOR``).  Runs standalone::

    PYTHONPATH=src python benchmarks/bench_emulator_throughput.py \
        --programs gzip lame --min-speedup 2.0

or under pytest-benchmark with the rest of the suite.
"""

import argparse
import json
import math
import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))

import _shared  # noqa: E402

from repro.emu import Emulator, run_image  # noqa: E402

DEFAULT_OUTPUT = os.environ.get(
    "REPRO_BENCH_EMULATOR",
    os.path.join(os.path.dirname(__file__), "BENCH_emulator.json"),
)

#: Verification calls per chain measurement (steady-state: block cache warm
#: after the first call).
CHAIN_REPEATS = 40


def _digest_args(name):
    prog = _shared.program(name)
    image = _shared.protected(name, "cleartext").image
    return image, image.symbols[f"digest_{name}"].vaddr, [
        12345, 7, prog.data.addr("stats"),
    ]


def measure_chain(name, engine):
    """Repeated protected-digest calls; returns (ips, state-signature)."""
    image, vaddr, args = _digest_args(name)
    emulator = Emulator(image, max_steps=200_000_000, engine=engine)
    emulator.call_function(vaddr, args)  # warm caches / first-call compile
    start_steps, start_cycles = emulator.steps, emulator.cycles
    t0 = time.perf_counter()
    for _ in range(CHAIN_REPEATS):
        eax = emulator.call_function(vaddr, args)
    elapsed = time.perf_counter() - t0
    steps = emulator.steps - start_steps
    signature = (steps, emulator.cycles - start_cycles, eax)
    return steps / elapsed, signature


def measure_program(name, engine):
    """One whole-program run; returns (ips, full RunResult signature)."""
    image = _shared.program(name).image
    t0 = time.perf_counter()
    result = run_image(image, max_steps=_shared.MAX_STEPS, engine=engine)
    elapsed = time.perf_counter() - t0
    signature = (
        result.exit_status, result.steps, result.cycles,
        result.stdout.hex(), repr(result.fault),
    )
    return result.steps / elapsed, signature


def run_suite(programs, output=DEFAULT_OUTPUT):
    rows = {}
    mismatches = []
    for name in programs:
        row = {}
        for kind, measure in (("chain", measure_chain), ("program", measure_program)):
            step_ips, step_sig = measure(name, "step")
            block_ips, block_sig = measure(name, "block")
            if step_sig != block_sig:
                mismatches.append(
                    {"program": name, "workload": kind,
                     "step": list(step_sig), "block": list(block_sig)}
                )
            row[kind] = {
                "step_ips": round(step_ips),
                "block_ips": round(block_ips),
                "speedup": round(block_ips / step_ips, 2),
                "identical": step_sig == block_sig,
            }
        rows[name] = row

    def geomean(kind):
        vals = [rows[n][kind]["speedup"] for n in rows]
        return round(math.exp(sum(math.log(v) for v in vals) / len(vals)), 2)

    payload = {
        "programs": rows,
        "chain_speedup_geomean": geomean("chain"),
        "program_speedup_geomean": geomean("program"),
        "mismatches": mismatches,
        "chain_repeats": CHAIN_REPEATS,
    }
    if output:
        with open(output, "w") as fh:
            json.dump(payload, fh, indent=2)
    history = {}
    for name, row in rows.items():
        for kind in ("chain", "program"):
            history[f"{name}.{kind}.block_ips"] = row[kind]["block_ips"]
            history[f"{name}.{kind}.step_ips"] = row[kind]["step_ips"]
    history["chain_speedup_geomean"] = payload["chain_speedup_geomean"]
    history["program_speedup_geomean"] = payload["program_speedup_geomean"]
    _shared.record_history("emulator", history)
    return payload


def _print_report(payload):
    print(f"{'program':<8} {'chain step':>11} {'chain block':>12} {'x':>6}"
          f" {'prog step':>11} {'prog block':>12} {'x':>6}")
    for name, row in payload["programs"].items():
        c, p = row["chain"], row["program"]
        print(f"{name:<8} {c['step_ips']:>11,} {c['block_ips']:>12,}"
              f" {c['speedup']:>5.1f}x {p['step_ips']:>11,}"
              f" {p['block_ips']:>12,} {p['speedup']:>5.1f}x")
    print(f"\ngeomean speedup: chain {payload['chain_speedup_geomean']}x, "
          f"program {payload['program_speedup_geomean']}x; "
          f"{len(payload['mismatches'])} differential mismatch(es)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--programs", nargs="+", default=["gzip", "lame"],
                        help="corpus programs to measure")
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        help="fail unless the chain-workload geomean "
                        "speedup reaches this factor")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help="where to write BENCH_emulator.json")
    args = parser.parse_args(argv)

    payload = run_suite(args.programs, output=args.output)
    _print_report(payload)
    if payload["mismatches"]:
        print("ERROR: engines diverged")
        return 1
    if payload["chain_speedup_geomean"] < args.min_speedup:
        print(f"ERROR: chain speedup {payload['chain_speedup_geomean']}x "
              f"below required {args.min_speedup}x")
        return 1
    return 0


# ---------------------------------------------------------------------------
# pytest-benchmark entry points
# ---------------------------------------------------------------------------

def test_emulator_throughput(benchmark):
    payload = benchmark.pedantic(
        lambda: run_suite(["gzip"]), rounds=1, iterations=1
    )
    _print_report(payload)
    assert not payload["mismatches"]
    assert payload["chain_speedup_geomean"] >= 2.0
    assert payload["program_speedup_geomean"] >= 2.0


if __name__ == "__main__":
    sys.exit(main())
