"""§VII-B verification-function selection."""

import pytest

from repro.core import (
    SelectionError, rank_candidates, select_verification_function,
)
from repro.core.selection import is_chain_translatable


def test_selects_the_digest(small_wget):
    assert select_verification_function(small_wget) == "digest_wget"


def test_candidate_ranking_fields(small_wget):
    infos = {i.name: i for i in rank_candidates(small_wget)}
    digest = infos["digest_wget"]
    assert digest.translatable
    assert digest.call_sites >= 2           # step 1
    assert 0 < digest.time_share < 0.02     # step 2
    # step 3: most op kinds among the eligible
    eligible = [
        i for i in infos.values()
        if i.translatable and 0 < i.time_share < 0.02
    ]
    assert digest.op_kinds == max(i.op_kinds for i in eligible)


def test_hot_functions_excluded(small_wget):
    infos = {i.name: i for i in rank_candidates(small_wget)}
    # the bulk-transfer helpers burn most cycles -> above threshold
    assert infos["checksum_words"].time_share > 0.02


def test_non_leaf_not_translatable(small_wget):
    assert not is_chain_translatable(small_wget.functions["main"])
