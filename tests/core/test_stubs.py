"""Loader stub generation."""

from repro.core import build_loader_stub
from repro.x86 import decode_all


def test_stub_structure():
    stub = build_loader_stub(0x1000, 0x2000, 0x2004, 0x3000)
    insns = decode_all(stub.code, address=0x1000)
    mnems = [i.mnemonic for i in insns]
    assert mnems[0] == "pushad"
    assert mnems[-2:] == ["popad", "ret"]
    assert "ret" in mnems[:-1]  # the pivot ret


def test_resume_address_is_stable():
    stub = build_loader_stub(0x1000, 0x2000, 0x2004, 0x3000)
    # the resume sequence (popad; ret) lives at the recorded address
    offset = stub.resume - stub.base
    assert stub.code[offset] == 0x61  # popad
    assert stub.code[offset + 1] == 0xC3


def test_decrypting_stub_calls_support():
    stub = build_loader_stub(
        0x1000, 0x2000, 0x2004, 0x3000,
        decrypt_call=0x5000, decrypt_args=(1, 2, 3),
    )
    insns = decode_all(stub.code, address=0x1000)
    calls = [i for i in insns if i.mnemonic == "call"]
    assert calls and calls[0].branch_target() == 0x5000
    pushes = [i for i in insns if i.mnemonic == "push"]
    assert len(pushes) >= 4  # 3 args + resume address
