"""Flight recorder: a bounded, structured event journal.

Where the metrics registry aggregates (how many blocks were compiled)
and the tracer times regions (how long did ``protect`` take), the
flight recorder answers *what happened, in order* — the last N
discrete events across every subsystem, cheap enough to leave running
and small enough to dump whole on a crash.

Event kinds recorded by the instrumented subsystems:

========================  =============================================
``protect``               one program protected (protector)
``rewrite``               one binary analyzed/rewritten (rewrite engine)
``chain_dispatch``        a verification chain entered a gadget
                          (chain tracer; only while one is installed)
``chain_corruption``      a dying chain attributed to a gadget
``block_compile``         the block engine compiled a superblock
``block_invalidate``      a superblock was discarded (``tier`` names
                          which coherence tier caught it: ``page`` for
                          the per-page write-version compare, ``store``
                          for an in-block self-modifying store)
``trace_compile``         the trace engine compiled a linked trace
``trace_invalidate``      a linked trace was discarded
``attack``                one attack evaluation scored
``pipeline.task``         one pipeline task merged back in the parent
========================  =============================================

Design constraints (mirroring :mod:`repro.telemetry.metrics`):

* **Bounded.**  Events live in a ring (``collections.deque`` with
  ``maxlen``); the newest ``capacity`` events are kept and ``dropped``
  counts the overwritten ones.  The journal can never grow without
  bound, so it is safe to leave enabled in long runs.  The default
  capacity (8192) is overridable via ``REPRO_RECORDER_EVENTS`` or the
  CLI's ``--recorder-events``.
* **Near-zero when disabled.**  The process-wide recorder starts
  disabled; :meth:`FlightRecorder.record` returns immediately and hot
  call sites additionally guard with ``if recorder.enabled`` so the
  disabled cost is one attribute load.  Nothing is retained.
* **Monotonic timestamps.**  Events carry :func:`time.perf_counter`
  offsets from the recorder's creation, plus one wall-clock anchor
  (``start_wall``) so exports can be correlated with span traces.
* **Subscribable.**  :meth:`subscribe` registers a callback that sees
  every event as a dict, live — the feed that powers rolling windows
  (:mod:`repro.telemetry.windows`) and ``--journal-follow`` NDJSON
  streaming.  With no subscribers the cost is one truthiness check.
* **Self-accounting.**  Every 256th ``record`` times itself and
  extrapolates into ``self_seconds`` — the recorder's own overhead,
  exported as ``telemetry.overhead.*`` (see
  :mod:`repro.telemetry.overhead`) so the <5% enabled-overhead budget
  is measurable from inside a run.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional

from .metrics import _ensure_parent_dir

__all__ = [
    "FlightRecorder",
    "get_recorder",
    "set_recorder",
    "default_capacity",
]

#: Environment variable overriding the default ring capacity.
CAPACITY_ENV = "REPRO_RECORDER_EVENTS"

#: One in this many ``record`` calls is timed for self-accounting.
_SELF_SAMPLE_EVERY = 256


def default_capacity() -> int:
    """The configured default ring capacity (env override or 8192)."""
    raw = os.environ.get(CAPACITY_ENV)
    if raw is None:
        return FlightRecorder.DEFAULT_CAPACITY
    capacity = int(raw)
    if capacity < 1:
        raise ValueError(f"{CAPACITY_ENV} must be >= 1, got {capacity}")
    return capacity


class FlightRecorder:
    """Ring-buffered structured event journal."""

    #: Built-in default ring capacity (events retained) when neither a
    #: constructor argument nor ``REPRO_RECORDER_EVENTS`` overrides it.
    DEFAULT_CAPACITY = 8192

    __slots__ = (
        "enabled",
        "capacity",
        "start_wall",
        "self_seconds",
        "_t0",
        "_events",
        "_seq",
        "_subscribers",
    )

    def __init__(self, capacity: Optional[int] = None, enabled: bool = True):
        if capacity is None:
            capacity = default_capacity()
        if capacity < 1:
            raise ValueError("recorder capacity must be >= 1")
        self.enabled = enabled
        self.capacity = capacity
        self.start_wall = time.time()
        #: Extrapolated seconds spent inside ``record`` (sampled).
        self.self_seconds = 0.0
        self._t0 = time.perf_counter()
        self._events: deque = deque(maxlen=capacity)
        self._seq = 0
        self._subscribers: List[Callable[[dict], None]] = []

    # -- recording ------------------------------------------------------

    def record(self, kind: str, **fields: Any) -> None:
        """Append one event; no-op while disabled.

        ``fields`` must be JSON-serializable; ``seq``, ``ts`` and
        ``kind`` are reserved names.  Subscribers see the event as a
        dict immediately after it is retained.
        """
        if not self.enabled:
            return
        seq = self._seq + 1
        self._seq = seq
        sampled = not seq % _SELF_SAMPLE_EVERY
        started = time.perf_counter() if sampled else 0.0
        ts = time.perf_counter() - self._t0
        self._events.append((seq, ts, kind, fields))
        if self._subscribers:
            event = {"type": "event", "seq": seq, "ts": round(ts, 9), "kind": kind}
            event.update(fields)
            for subscriber in self._subscribers:
                subscriber(event)
        if sampled:
            self.self_seconds += (
                (time.perf_counter() - started) * _SELF_SAMPLE_EVERY
            )

    def ingest(
        self,
        events: Iterable[dict],
        labels: Optional[Dict[str, str]] = None,
        pid: Optional[int] = None,
    ) -> int:
        """Adopt events exported by another recorder (a pool worker).

        Each event is re-recorded here — new sequence numbers, this
        recorder's clock — preserving the original fields; the worker's
        own relative timestamp survives as ``worker_ts`` and ``pid``
        and ``labels`` (as the ``ctx`` field) ride along.  Ingested
        events flow through subscribers like locally recorded ones, so
        live views see pool workers' events as results merge.  Returns
        the number of events adopted.
        """
        if not self.enabled:
            return 0
        adopted = 0
        for event in events:
            if event.get("type") != "event":
                continue
            fields = {
                k: v
                for k, v in event.items()
                if k not in ("type", "seq", "ts", "kind")
            }
            if "ts" in event:
                fields.setdefault("worker_ts", event["ts"])
            if pid is not None:
                fields.setdefault("pid", pid)
            if labels:
                ctx = dict(labels)
                ctx.update(fields.get("ctx") or {})
                fields["ctx"] = ctx
            self.record(event.get("kind", "?"), **fields)
            adopted += 1
        return adopted

    # -- subscriptions ---------------------------------------------------

    def subscribe(self, callback: Callable[[dict], None]) -> Callable:
        """Register ``callback`` for every future event; returns it."""
        self._subscribers.append(callback)
        return callback

    def unsubscribe(self, callback: Callable[[dict], None]) -> None:
        """Remove a subscriber registered with :meth:`subscribe`."""
        try:
            self._subscribers.remove(callback)
        except ValueError:
            pass

    # -- introspection --------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    @property
    def dropped(self) -> int:
        """Events overwritten by the ring since creation/clear."""
        return self._seq - len(self._events)

    def kinds(self) -> Dict[str, int]:
        """Event count per kind among the retained events."""
        out: Dict[str, int] = {}
        for _, _, kind, _ in self._events:
            out[kind] = out.get(kind, 0) + 1
        return out

    def clear(self) -> None:
        self._events.clear()
        self._seq = 0
        self.self_seconds = 0.0

    # -- export ---------------------------------------------------------

    def iter_events(self) -> Iterator[dict]:
        for seq, ts, kind, fields in self._events:
            event = {"type": "event", "seq": seq, "ts": round(ts, 9), "kind": kind}
            event.update(fields)
            yield event

    def to_events(self) -> List[dict]:
        """Retained events, oldest first, as JSON-ready dicts."""
        return list(self.iter_events())

    def summary(self) -> dict:
        return {
            "type": "journal_summary",
            "recorded": self._seq,
            "retained": len(self._events),
            "dropped": self.dropped,
            "capacity": self.capacity,
            "start_wall": self.start_wall,
            "self_seconds": round(self.self_seconds, 9),
            "kinds": self.kinds(),
        }

    def dump(self, fh) -> None:
        """Write the journal (events + summary) as JSONL to ``fh``.

        Used for on-demand dumps and crash dumps alike — the CLI calls
        this from a ``finally`` (and from its SIGTERM/SIGINT handlers)
        so a faulting or killed run still leaves its journal behind.
        """
        for event in self.iter_events():
            fh.write(json.dumps(event, sort_keys=True))
            fh.write("\n")
        fh.write(json.dumps(self.summary(), sort_keys=True))
        fh.write("\n")

    def write_jsonl(self, path: str) -> None:
        _ensure_parent_dir(path)
        with open(path, "w") as fh:
            self.dump(fh)

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return (
            f"<FlightRecorder {state}, {len(self._events)}/{self.capacity} "
            f"events, {self.dropped} dropped>"
        )


#: Process-wide recorder; starts disabled, like the registry and tracer.
_recorder = FlightRecorder(enabled=False)


def get_recorder():
    """The process-wide flight recorder (disabled until configured).

    When a task-private override (:class:`~repro.telemetry.context.\
task_telemetry`) is installed on this thread, its recorder wins.
    Otherwise, when a :class:`~repro.telemetry.context.TelemetryContext`
    is active, a view that stamps the context's labels onto every event
    is returned instead — same recorder, same ring, labeled events.
    """
    from .context import current_context, current_task_telemetry

    task = current_task_telemetry()
    if task is not None and task.recorder is not None:
        return task.recorder
    ctx = current_context()
    if ctx is not None:
        return ctx.recorder
    return _recorder


def set_recorder(recorder: FlightRecorder) -> FlightRecorder:
    global _recorder
    previous, _recorder = _recorder, recorder
    return previous
