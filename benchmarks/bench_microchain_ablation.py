"""§V-C ablation — function chains vs instruction-level µ-chains.

The paper implemented both and found µ-chains cost about 2x more,
"because each µ-chain contains its own prologue and epilogue", and kept
function chains.  Both are implemented here; the comparison below runs
the same verification function both ways.
"""

import pytest

import _shared
from repro.core import protect_microchains
from repro.corpus import build_gzip, build_lame, build_wget
from repro.emu import Emulator

BUILDERS = {
    "wget": lambda: build_wget(blocks=2, chunks=10),
    "gzip": lambda: build_gzip(blocks=2, positions=6),
    "lame": lambda: build_lame(blocks=2, frames=6),
}


def _call_cost(program, image, name):
    emulator = Emulator(image, max_steps=10_000_000)
    before = emulator.cycles
    emulator.call_function(
        image.symbols[name].vaddr, [12345, 7, program.data.addr("stats")]
    )
    return emulator.cycles - before


def test_microchain_ablation(benchmark):
    def measure():
        from repro.core import Parallax, ProtectConfig

        rows = {}
        for name, build in BUILDERS.items():
            program = build()
            digest = f"digest_{name}"
            baseline = program.run()
            func = Parallax(
                ProtectConfig(strategy="cleartext", verification_functions=[digest])
            ).protect(program)
            micro = protect_microchains(program, digest)
            result = micro.run()
            assert not result.crashed and result.stdout == baseline.stdout

            native = _call_cost(program, program.image, digest)
            func_cost = _call_cost(program, func.image, digest)
            micro_cost = _call_cost(program, micro.image, digest)
            rows[name] = (native, func_cost, micro_cost, micro.chain_count)
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print("=== §V-C: function chains vs µ-chains (measured, per call) ===")
    print(f"{'program':<8}{'native':>8}{'func chain':>12}{'µ-chains':>10}"
          f"{'µ/func':>8}{'count':>7}")
    for name, (native, func_cost, micro_cost, count) in rows.items():
        print(f"{name:<8}{native:>8}{func_cost:>12}{micro_cost:>10}"
              f"{micro_cost / func_cost:>7.2f}x{count:>7}")
    # the paper's finding: µ-chains are substantially more expensive
    for name, (_n, func_cost, micro_cost, _c) in rows.items():
        assert micro_cost > func_cost * 1.3, name
