"""Telemetry enabled-overhead gate: measure it, publish it, enforce it.

Runs a representative workload — a whole corpus-program emulation on
the block engine, the paper's fig. 5b shape — twice under
:func:`repro.telemetry.measure_overhead`: once with telemetry fully
disabled, once with metrics + tracing + flight recorder all on.  The
relative slowdown is the *enabled overhead* of the observability
stack, and this benchmark fails (exit 1) when it exceeds the budget
(default 5%, ``REPRO_TELEMETRY_BUDGET`` to override) — the CI gate
that keeps "cheap enough to leave running" an enforced property
instead of a docstring claim.

Emits ``BENCH_telemetry_overhead.json`` next to this file (override
with ``--output`` or ``REPRO_BENCH_TELEMETRY_OVERHEAD``) and appends
``headroom`` (budget − fraction, higher is better) to the benchmark
history for the regression gate.  Runs standalone::

    PYTHONPATH=src python benchmarks/bench_telemetry_overhead.py
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

import _shared  # noqa: E402

from repro.telemetry import measure_overhead, publish_overhead  # noqa: E402
from repro.telemetry.overhead import configured_budget  # noqa: E402

DEFAULT_OUTPUT = os.environ.get(
    "REPRO_BENCH_TELEMETRY_OVERHEAD",
    os.path.join(os.path.dirname(__file__), "BENCH_telemetry_overhead.json"),
)

#: Workload program: small enough to repeat, big enough that the
#: emulator's instrumented hot paths dominate the measurement.
PROGRAM = os.environ.get("REPRO_BENCH_OVERHEAD_PROGRAM", "gzip")


def run_gate(repeats: int, output: str) -> int:
    program = _shared.program(PROGRAM)

    def workload():
        result = program.run(max_steps=_shared.MAX_STEPS, engine=_shared.ENGINE)
        assert not result.crashed, result.fault

    budget = configured_budget()
    report = measure_overhead(workload, repeats=repeats, budget=budget)
    publish_overhead(report)

    verdict = "within" if report.within_budget else "OVER"
    print(f"telemetry enabled-overhead gate ({PROGRAM}, {_shared.ENGINE} engine)")
    print(f"  off     : {report.off_seconds * 1e3:8.2f} ms (best of {repeats})")
    print(f"  on      : {report.on_seconds * 1e3:8.2f} ms")
    print(f"  overhead: {report.fraction * 100:8.2f} %")
    print(f"  budget  : {report.budget * 100:8.2f} %  -> {verdict}")

    payload = {
        "program": PROGRAM,
        "engine": _shared.ENGINE,
        "env": _shared.env_stamp(),
        **report.to_dict(),
    }
    with open(output, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {output}")

    # history metric must be higher-is-better: record the headroom left
    # under the budget rather than the overhead itself
    _shared.record_history(
        "telemetry_overhead",
        {"headroom": report.budget - report.fraction},
    )

    if not report.within_budget:
        print(
            f"ERROR: telemetry overhead {report.fraction:.1%} exceeds "
            f"the {report.budget:.0%} budget",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timed repetitions per arm; best-of is kept (default 3)",
    )
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help="result JSON path")
    args = parser.parse_args(argv)
    return run_gate(args.repeats, args.output)


if __name__ == "__main__":
    sys.exit(main())
