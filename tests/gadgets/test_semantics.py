"""Gadget classification."""

import pytest

from repro.gadgets import GadgetOp, classify
from repro.x86 import Assembler, EAX, EBX, ECX, EDX, ESI, ESP, Imm, decode_all, mem32, mem8


def classify_snippet(build):
    a = Assembler()
    build(a)
    return classify(decode_all(a.assemble()))


CASES = [
    (lambda a: (a.pop(EAX), a.ret()), GadgetOp.LOAD_CONST),
    (lambda a: (a.mov(EBX, EAX), a.ret()), GadgetOp.MOV_REG),
    (lambda a: (a.add(ESI, EAX), a.ret()), GadgetOp.BINOP),
    (lambda a: (a.xor(EAX, EBX), a.ret()), GadgetOp.BINOP),
    (lambda a: (a.imul(EAX, EBX), a.ret()), GadgetOp.BINOP),
    (lambda a: (a.mov(EAX, mem32(EBX, disp=4)), a.ret()), GadgetOp.LOAD_MEM),
    (lambda a: (a.mov(mem32(ECX), EAX), a.ret()), GadgetOp.STORE_MEM),
    (lambda a: (a.add(mem32(ECX), EAX), a.ret()), GadgetOp.ADD_MEM),
    (lambda a: (a.add(EAX, mem32(ECX)), a.ret()), GadgetOp.ADD_FROM_MEM),
    (lambda a: (a.neg(EAX), a.ret()), GadgetOp.NEG),
    (lambda a: (a.not_(EBX), a.ret()), GadgetOp.NOT),
    (lambda a: (a.inc(ECX), a.ret()), GadgetOp.INC),
    (lambda a: (a.dec(EDX), a.ret()), GadgetOp.DEC),
    (lambda a: (a.sar(EAX, Imm(31, 8)), a.ret()), GadgetOp.SHIFT),
    (lambda a: (a.sbb(EAX, EAX), a.ret()), GadgetOp.SBB_SELF),
    (lambda a: (a.mov(ESP, EAX), a.ret()), GadgetOp.MOV_ESP),
    (lambda a: (a.xchg(EAX, ESP), a.ret()), GadgetOp.MOV_ESP),
    (lambda a: (a.pop(ESP), a.ret()), GadgetOp.POP_ESP),
    (lambda a: (a.int(0x80), a.ret()), GadgetOp.SYSCALL),
    (lambda a: a.ret(), GadgetOp.NOP),
    (lambda a: (a.nop(), a.ret()), GadgetOp.NOP),
]


@pytest.mark.parametrize("build,expected", CASES, ids=[c[1] + str(i) for i, c in enumerate(CASES)])
def test_classification(build, expected):
    gadget = classify_snippet(build)
    assert gadget is not None
    assert gadget.kind.op == expected


def test_paper_sar_byte_gadget_is_byte_op():
    gadget = classify_snippet(lambda a: (a.sar(mem8(ECX, disp=7), 0x8B), a.ret()))
    assert gadget.kind.op == GadgetOp.BYTE_OP
    assert gadget.kind.dst is ECX
    assert gadget.kind.disp == 7


def test_control_flow_in_body_rejected():
    assert classify_snippet(lambda a: (a.call(EAX), a.ret())) is None
    a = Assembler()
    a.jmp("x"); a.label("x"); a.ret()
    from repro.gadgets import classify as c
    from repro.x86 import decode_all as d
    assert c(d(a.assemble())) is None


def test_far_return_flag():
    gadget = classify_snippet(lambda a: (a.mov(EAX, EBX), a.retf()))
    assert gadget.far
    assert gadget.kind.op == GadgetOp.MOV_REG


def test_ret_imm_recorded():
    gadget = classify_snippet(lambda a: (a.pop(EAX), a.ret(Imm(8, 16))))
    assert gadget.ret_imm == 8


def test_stack_words_counts_pops():
    gadget = classify_snippet(lambda a: (a.pop(EAX), a.pop(EBX), a.ret()))
    assert gadget is not None
    assert gadget.stack_words == 2
    assert gadget.kind.op == GadgetOp.OTHER  # multi-op body

def test_usable_flag():
    assert classify_snippet(lambda a: (a.pop(EAX), a.ret())).usable
    assert not classify_snippet(lambda a: (a.push(EAX), a.ret())).usable
