"""Loader stubs that bootstrap verification chains (§V-A).

The stub replaces the entry of a function selected as verification
code.  It (1) saves the register state with ``pushad``, (2) records the
stack pointer so the chain can reach the caller's arguments and deliver
a return value, (3) pushes the address of its own resume sequence and
records where that address lives, (4) pivots esp into the chain and
``ret``s to start it.  The chain's epilogue pivots back, landing on the
resume sequence: ``popad; ret`` — execution continues in the caller as
if the original function had run.

Stack layout after step (3), matching the offsets in
:mod:`repro.ropc.compiler`::

    [frame-4] resume address        <- [resume_cell] points here
    [frame+0] saved edi             <- [frame_cell] points here
      ...
    [frame+28] saved eax            <- chain writes return value here
    [frame+32] return address to caller
    [frame+36] arg 0, [frame+40] arg 1, ...
"""

from __future__ import annotations

from typing import Optional

from ..x86.asm import Assembler
from ..x86.operands import Imm, Mem, mem32
from ..x86.registers import ESP


class StubLayout:
    """Addresses of the assembled stub's interesting points."""

    __slots__ = ("base", "resume", "size", "code")

    def __init__(self, base: int, resume: int, size: int, code: bytes):
        self.base = base
        self.resume = resume
        self.size = size
        self.code = code


def build_loader_stub(
    base: int,
    frame_cell: int,
    resume_cell: int,
    chain_addr: int,
    decrypt_call: Optional[int] = None,
    decrypt_args: tuple = (),
    pre_calls: tuple = (),
) -> StubLayout:
    """Assemble a loader stub at ``base``.

    Args:
        base: address the stub will be placed at.
        frame_cell: RW cell receiving the post-pushad esp.
        resume_cell: RW cell receiving the address of the resume slot.
        chain_addr: address of the (resolved, serialized) chain.
        decrypt_call: address of a runtime-support routine to call
            before pivoting (chain decryption / regeneration), or None.
        decrypt_args: immediate arguments pushed (cdecl) to that routine.
        pre_calls: extra (address, args) routines invoked before the
            decryptor — used by the §VI-C chain-guard network.
    """
    calls = list(pre_calls)
    if decrypt_call is not None:
        calls.append((decrypt_call, tuple(decrypt_args)))

    def emit(resume_addr: int) -> Assembler:
        asm = Assembler(base=base)
        asm.pushad()
        for target, args in calls:
            for arg in reversed(args):
                asm.push(Imm(arg, 32))
            # call via absolute address in a register would disturb the
            # saved state; a plain relative call is fine because pushad
            # already saved everything the chain needs.
            rel = target - (asm.here + 5)
            asm.raw(b"\xe8" + (rel & 0xFFFFFFFF).to_bytes(4, "little"))
            if args:
                asm.add(ESP, Imm(4 * len(args), 8))
        asm.mov(_abs32(frame_cell), ESP)
        asm.push(Imm(resume_addr, 32))
        asm.mov(_abs32(resume_cell), ESP)
        asm.mov(ESP, Imm(chain_addr, 32))
        asm.ret()
        asm.label("resume")
        asm.popad()
        asm.ret()
        return asm

    # Two passes: the resume address depends only on code length, which
    # is independent of the placeholder value (always imm32).
    draft = emit(0)
    draft.assemble()
    resume_addr = draft.address_of("resume")
    final = emit(resume_addr)
    code = final.assemble()
    assert final.address_of("resume") == resume_addr
    return StubLayout(base=base, resume=resume_addr, size=len(code), code=code)


def _abs32(addr: int) -> Mem:
    """A dword memory operand at an absolute address."""
    return mem32(disp=addr)
