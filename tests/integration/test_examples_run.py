"""Every shipped example must run clean."""

import pytest

from examples import (
    probabilistic_chains,
    ptrace_detector,
    quickstart,
    software_crack_defense,
)


@pytest.mark.parametrize(
    "module",
    [quickstart, ptrace_detector, software_crack_defense, probabilistic_chains],
    ids=lambda m: m.__name__.split(".")[-1],
)
def test_example_main(module, capsys):
    module.main()
    out = capsys.readouterr().out
    assert out.strip()
