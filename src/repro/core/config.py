"""Protection configuration."""

from __future__ import annotations

from typing import List, Optional

#: Chain-hardening strategies evaluated in Fig. 5 (§V-B, §VII-B).
STRATEGY_CLEARTEXT = "cleartext"
STRATEGY_XOR = "xor"
STRATEGY_RC4 = "rc4"
STRATEGY_LINEAR = "linear"

STRATEGIES = (STRATEGY_CLEARTEXT, STRATEGY_XOR, STRATEGY_RC4, STRATEGY_LINEAR)


class ProtectConfig:
    """Options for one protection run.

    Attributes:
        strategy: one of :data:`STRATEGIES`.
        verification_functions: function names to translate into chains;
            ``None`` selects one automatically per §VII-B.
        protect_addresses: instruction addresses whose overlapping
            gadgets should be preferred by the chain compiler; ``None``
            defaults to every control-flow and syscall instruction (the
            likely attack targets, §VIII).
        n_variants: compiled variants for the linear strategy (power of
            two; §V-B's N).
        seed: determinism seed for probabilistic resolution and keys.
        time_threshold: profile share above which a function is too hot
            to become verification code (paper: 2%).
        guard_chains: §VI-C — insert a checksumming guard over the
            chain machinery (encrypted blobs, variant tables, runtime
            support), invoked from every loader stub.  Safe against the
            Wurster attack because the guarded bytes live in data
            memory; the paper proposes this and leaves it to future
            work.
    """

    def __init__(
        self,
        strategy: str = STRATEGY_CLEARTEXT,
        verification_functions: Optional[List[str]] = None,
        protect_addresses: Optional[List[int]] = None,
        n_variants: int = 4,
        seed: int = 0x9A11A7,
        time_threshold: float = 0.02,
        guard_chains: bool = False,
    ):
        if strategy not in STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}")
        if n_variants < 1 or n_variants & (n_variants - 1):
            raise ValueError("n_variants must be a power of two")
        self.strategy = strategy
        self.verification_functions = verification_functions
        self.protect_addresses = protect_addresses
        self.n_variants = n_variants
        self.seed = seed
        self.time_threshold = time_threshold
        self.guard_chains = guard_chains

    def cache_key(self) -> tuple:
        """Canonical tuple of every field that influences the protected
        output — the config half of the protection cache key.  Any new
        config attribute MUST be added here (the differential test
        suite guards the equality side; this guards the sensitivity
        side)."""
        return (
            self.strategy,
            tuple(self.verification_functions)
            if self.verification_functions is not None
            else None,
            tuple(self.protect_addresses)
            if self.protect_addresses is not None
            else None,
            self.n_variants,
            self.seed,
            self.time_threshold,
            self.guard_chains,
        )
