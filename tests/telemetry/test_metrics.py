"""Metrics registry: instruments, buckets, timers, no-op mode, export."""

import json
import time

import pytest

from repro.telemetry import (
    MetricsRegistry,
    telemetry_session,
    get_metrics,
)
from repro.telemetry.metrics import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_TIMER,
)


def test_counter_accumulates_and_rejects_negative():
    registry = MetricsRegistry()
    counter = registry.counter("x")
    counter.inc()
    counter.inc(41)
    assert counter.value == 42
    assert registry.counter("x") is counter  # same instrument on re-request
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge_set_and_add():
    registry = MetricsRegistry()
    gauge = registry.gauge("g")
    gauge.set(10)
    gauge.add(-3)
    assert gauge.value == 7


def test_histogram_bucket_boundaries_le_semantics():
    registry = MetricsRegistry()
    hist = registry.histogram("h", buckets=(1, 10, 100))
    # A value exactly on a bound lands in that bucket (le semantics).
    for value in (0, 1, 1.5, 10, 10.1, 100, 101, 5000):
        hist.observe(value)
    counts = dict()
    for (bound, count) in hist.bucket_counts():
        counts[bound] = count
    assert counts[1.0] == 2      # 0, 1
    assert counts[10.0] == 2     # 1.5, 10
    assert counts[100.0] == 2    # 10.1, 100
    assert counts[float("inf")] == 2  # 101, 5000
    assert hist.count == 8
    assert hist.min == 0 and hist.max == 5000


def test_histogram_rejects_bad_buckets():
    registry = MetricsRegistry()
    with pytest.raises(ValueError):
        registry.histogram("empty", buckets=())
    with pytest.raises(ValueError):
        registry.histogram("dup", buckets=(1, 1, 2))


def test_histogram_unsorted_buckets_are_sorted():
    registry = MetricsRegistry()
    hist = registry.histogram("h", buckets=(100, 1, 10))
    assert hist.buckets == (1.0, 10.0, 100.0)


def test_type_conflicts_rejected():
    registry = MetricsRegistry()
    registry.counter("name")
    with pytest.raises(TypeError):
        registry.gauge("name")
    with pytest.raises(TypeError):
        registry.histogram("name")


def test_timer_uses_monotonic_clock_and_records():
    registry = MetricsRegistry()
    with registry.timer("t", buckets=(0.001, 0.1, 10.0)):
        time.sleep(0.01)
    hist = registry.get("t")
    assert hist.count == 1
    # Slept 10ms: the measured duration must be >= the sleep (a wall
    # clock stepping backwards would violate this) and well under 10s.
    assert 0.009 <= hist.sum < 10.0


def test_timer_as_decorator():
    registry = MetricsRegistry()

    @registry.timer("decorated")
    def work():
        return 7

    assert work() == 7
    assert work() == 7
    assert registry.get("decorated").count == 2


def test_timer_stop_without_start_raises():
    registry = MetricsRegistry()
    with pytest.raises(RuntimeError):
        registry.timer("t").stop()


def test_disabled_registry_emits_nothing():
    registry = MetricsRegistry(enabled=False)
    registry.counter("c").inc(100)
    registry.gauge("g").set(5)
    registry.histogram("h").observe(1)
    with registry.timer("t"):
        pass
    assert len(registry) == 0
    assert registry.to_dict() == {}
    # Disabled accessors hand out the shared null instruments.
    assert registry.counter("c") is NULL_COUNTER
    assert registry.gauge("g") is NULL_GAUGE
    assert registry.histogram("h") is NULL_HISTOGRAM
    assert registry.timer("t") is NULL_TIMER
    assert NULL_COUNTER.value == 0  # the null counter never moves


def test_json_export_roundtrip(tmp_path):
    registry = MetricsRegistry()
    registry.counter("a").inc(3)
    registry.histogram("b", buckets=(1, 2)).observe(1.5)
    path = tmp_path / "metrics.json"
    registry.write_json(str(path))
    data = json.loads(path.read_text())
    assert data["a"]["value"] == 3
    assert data["b"]["count"] == 1

    jsonl = tmp_path / "metrics.jsonl"
    registry.write_jsonl(str(jsonl))
    lines = [json.loads(line) for line in jsonl.read_text().splitlines()]
    assert {line["name"] for line in lines} == {"a", "b"}


def test_default_registry_starts_disabled():
    # the process-wide default must be a no-op unless configured
    registry = get_metrics()
    if registry.enabled:
        pytest.skip("another component enabled the default registry")
    registry.counter("should_not_exist").inc()
    assert "should_not_exist" not in registry


def test_telemetry_session_scopes_and_restores():
    before = get_metrics()
    with telemetry_session() as (metrics, tracer):
        assert get_metrics() is metrics
        assert metrics.enabled and tracer.enabled
        metrics.counter("inside").inc()
    assert get_metrics() is before
    assert "inside" not in get_metrics()


def test_merge_samples_counters_add_gauges_set():
    worker_a = MetricsRegistry(enabled=True)
    worker_a.counter("jobs").inc(3)
    worker_a.gauge("depth").set(5)
    worker_b = MetricsRegistry(enabled=True)
    worker_b.counter("jobs").inc(4)
    worker_b.gauge("depth").set(9)

    parent = MetricsRegistry(enabled=True)
    parent.counter("jobs").inc()
    parent.merge_samples(worker_a.to_dict())
    parent.merge_samples(worker_b.to_dict())
    assert parent.counter("jobs").value == 8
    assert parent.gauge("depth").value == 9  # last merge wins


def test_merge_samples_histograms_fold_buckets_and_extremes():
    worker_a = MetricsRegistry(enabled=True)
    worker_a.histogram("lat", buckets=(1, 10)).observe(0.5)
    worker_a.histogram("lat", buckets=(1, 10)).observe(200)
    worker_b = MetricsRegistry(enabled=True)
    worker_b.histogram("lat", buckets=(1, 10)).observe(7)

    parent = MetricsRegistry(enabled=True)
    parent.merge_samples(worker_a.to_dict())
    parent.merge_samples(worker_b.to_dict())
    hist = parent.histogram("lat", buckets=(1, 10))
    counts = dict(hist.bucket_counts())
    assert counts[1.0] == 1 and counts[10.0] == 1
    assert counts[float("inf")] == 1
    assert hist.count == 3
    assert hist.sum == pytest.approx(207.5)
    assert hist.min == 0.5 and hist.max == 200


def test_merge_samples_rejects_mismatched_buckets():
    worker = MetricsRegistry(enabled=True)
    worker.histogram("lat", buckets=(1, 10)).observe(2)
    parent = MetricsRegistry(enabled=True)
    parent.histogram("lat", buckets=(5, 50)).observe(2)
    with pytest.raises(ValueError):
        parent.merge_samples(worker.to_dict())


def test_merge_samples_disabled_registry_is_noop():
    worker = MetricsRegistry(enabled=True)
    worker.counter("jobs").inc(5)
    parent = MetricsRegistry(enabled=False)
    parent.merge_samples(worker.to_dict())
    assert "jobs" not in parent


def test_histogram_streaming_stddev():
    registry = MetricsRegistry()
    hist = registry.histogram("h", buckets=(100,))
    for value in (2, 4, 4, 4, 5, 5, 7, 9):
        hist.observe(value)
    # classic textbook set: population stddev exactly 2
    assert hist.stddev == pytest.approx(2.0)
    assert hist.sum_sq == pytest.approx(sum(v * v for v in (2, 4, 4, 4, 5, 5, 7, 9)))
    data = hist.to_dict()
    assert data["stddev"] == pytest.approx(2.0)
    assert data["sum_sq"] == pytest.approx(hist.sum_sq)


def test_histogram_stddev_degenerate_cases():
    registry = MetricsRegistry()
    empty = registry.histogram("empty_h", buckets=(1,))
    assert empty.stddev == 0.0
    constant = registry.histogram("const_h", buckets=(1e9,))
    for _ in range(5):
        constant.observe(2.0 ** 27)  # exact in binary: variance is 0
    assert constant.stddev == 0.0
    # float cancellation pushing the variance slightly negative must
    # clamp to 0, not raise or return NaN
    clamped = registry.histogram("clamp_h", buckets=(10,))
    clamped.observe(3.0)
    clamped.observe(3.0)
    clamped.sum_sq -= 1e-9
    assert clamped.stddev == 0.0


def test_histogram_quantile_interpolates_within_buckets():
    registry = MetricsRegistry()
    hist = registry.histogram("q", buckets=(10, 20, 30))
    for value in range(1, 31):  # 1..30 uniform: 10 per bucket
        hist.observe(value)
    assert hist.quantile(0.0) == 1  # exact min
    assert hist.quantile(1.0) == 30  # clamped to observed max
    # median target rank 15 lands mid second bucket (10, 20]
    assert 10 <= hist.quantile(0.5) <= 20
    assert hist.quantile(0.5) == pytest.approx(15.0)
    assert hist.quantile(0.25) <= hist.quantile(0.75)


def test_histogram_quantile_bounds_and_overflow():
    registry = MetricsRegistry()
    hist = registry.histogram("q", buckets=(1, 10))
    with pytest.raises(ValueError):
        hist.quantile(-0.1)
    with pytest.raises(ValueError):
        hist.quantile(1.1)
    assert hist.quantile(0.5) == 0.0  # empty histogram
    hist.observe(5)
    hist.observe(5000)  # +Inf overflow
    # a rank inside the overflow bucket reports the observed max, the
    # only finite bound available
    assert hist.quantile(0.99) == 5000
    # estimates never leave [min, max]
    assert hist.quantile(0.25) >= hist.min


def test_histogram_empty_quantiles_and_moments():
    registry = MetricsRegistry()
    hist = registry.histogram("empty_q", buckets=(10, 100))
    assert hist.count == 0
    assert hist.mean == 0.0
    assert hist.stddev == 0.0
    for q in (0.0, 0.5, 0.9, 1.0):
        assert hist.quantile(q) == 0.0
    assert hist.min is None and hist.max is None


def test_histogram_single_sample():
    """With one observation every quantile is that observation, the
    mean equals it, and the spread is zero."""
    registry = MetricsRegistry()
    hist = registry.histogram("single", buckets=(10, 100, 1000))
    hist.observe(42)
    assert hist.count == 1
    assert hist.mean == 42.0
    assert hist.stddev == 0.0
    assert hist.min == hist.max == 42
    for q in (0.0, 0.25, 0.5, 0.99, 1.0):
        assert hist.quantile(q) == 42.0


def test_histogram_all_samples_in_one_bucket():
    """Identical samples collapse one bucket; min/max clamping must pin
    every quantile to the single observed value, not the bucket span."""
    registry = MetricsRegistry()
    hist = registry.histogram("mono", buckets=(10, 100, 1000))
    for _ in range(50):
        hist.observe(55)  # all land in the (10, 100] bucket
    assert hist.counts[1] == 50
    assert sum(hist.counts) == 50
    assert hist.stddev == 0.0
    for q in (0.0, 0.1, 0.5, 0.9, 1.0):
        assert hist.quantile(q) == 55.0


def test_merge_samples_folds_sum_sq():
    worker_a = MetricsRegistry(enabled=True)
    worker_a.histogram("lat", buckets=(10,)).observe(3)
    worker_b = MetricsRegistry(enabled=True)
    worker_b.histogram("lat", buckets=(10,)).observe(4)
    parent = MetricsRegistry(enabled=True)
    parent.merge_samples(worker_a.to_dict())
    parent.merge_samples(worker_b.to_dict())
    hist = parent.histogram("lat", buckets=(10,))
    assert hist.sum_sq == pytest.approx(25.0)
    # mean 3.5, E[x^2] 12.5 -> stddev 0.5
    assert hist.stddev == pytest.approx(0.5)
