"""The Parallax protection pipeline (§III, steps 1–5).

Given a corpus :class:`~repro.corpus.program.Program`, the protector:

1. selects verification code (§VII-B) and translates it into
   placeholder ROP chains (the paper's :math:`\\mathcal{R}`);
2. reserves loader stubs and redirects the selected functions to them
   (binary patch: ``jmp stub`` at the function entry);
3. collects every gadget in the (patched) binary, inserts a standard
   set for any kinds the chains need but the binary lacks, and marks
   gadgets overlapping the instructions-to-protect as preferred;
4. resolves the chains against the gadget mapping — preferring
   overlapping gadgets — and serializes them per the configured
   hardening strategy (cleartext / xor / RC4 / probabilistic linear
   combination), adding runtime-support code for the dynamic ones;
5. emits the loader stubs and the protection report.

The protected binary runs in the emulator exactly like the original;
its verification functions now execute as ROP chains whose gadgets
implicitly verify the protected code bytes.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Tuple

from ..binary import BinaryImage, Perm, Section
from ..corpus.program import Program
from ..emu import RunResult, run_image
from ..gadgets import GadgetCatalog, find_gadgets
from ..ropc import compile_functions, emit_standard_gadgets
from ..ropc.chain import RopChain
from ..ropc.compiler import RopCompiler
from ..x86.decoder import decode_all_cached
from ..crypto import rc4_crypt, xor_crypt_words
from . import runtime
from .config import (
    ProtectConfig,
    STRATEGY_CLEARTEXT,
    STRATEGY_LINEAR,
    STRATEGY_RC4,
    STRATEGY_XOR,
)
from ..telemetry import get_metrics, get_recorder, get_tracer
from .report import ChainRecord, ProtectionReport
from .selection import select_verification_function
from .stubs import build_loader_stub

GADGETS_BASE = 0x080A0000
STUBS_BASE = 0x080B0000
ROPDATA_BASE = 0x080C0000
ROPCHAINS_BASE = 0x080D0000
RT_BASE = 0x080E0000
ENC_BASE = 0x080F0000

_STUB_SLOT = 192  # bytes reserved per loader stub (guards + decryptor calls)

#: Bump when protection output changes for identical inputs, so cached
#: protected images from an older pipeline are never replayed.
#: v2: reports carry protected_addresses and per-chain gadget_spans
#: (the coverage observatory's inputs).
PROTECT_CACHE_VERSION = 2


class ProtectError(Exception):
    pass


class _Allocator:
    """Bump allocator for a growing section blob."""

    def __init__(self, base: int):
        self.base = base
        self.blob = bytearray()

    def alloc(self, size: int, init: bytes = b"", align: int = 4) -> int:
        while (self.base + len(self.blob)) % align:
            self.blob.append(0)
        addr = self.base + len(self.blob)
        payload = bytes(init) + bytes(size - len(init))
        self.blob += payload
        return addr


class ProtectedProgram:
    """A protected binary plus its provenance."""

    def __init__(self, program: Program, image: BinaryImage, report: ProtectionReport):
        self.program = program
        self.image = image
        self.report = report

    def run(
        self,
        debugger_attached: bool = False,
        max_steps: int = 50_000_000,
        image: Optional[BinaryImage] = None,
        engine: Optional[str] = None,
    ) -> RunResult:
        target = image if image is not None else self.image
        return run_image(
            target,
            debugger_attached=debugger_attached,
            max_steps=max_steps,
            engine=engine,
        )

    def __repr__(self) -> str:
        return f"<ProtectedProgram {self.program.name} [{self.report.strategy}]>"


class Parallax:
    """The protector.

    ``jobs`` fans the gadget finder's per-section scans across the
    pipeline worker pool.  It is an execution knob, not a semantic one:
    output is byte-identical for any value, so it is deliberately *not*
    part of :meth:`ProtectConfig.cache_key`.
    """

    def __init__(self, config: Optional[ProtectConfig] = None, jobs: int = 1):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.config = config or ProtectConfig()
        self.jobs = jobs

    # ------------------------------------------------------------------

    def protect(self, program: Program, use_cache: bool = True) -> ProtectedProgram:
        """Protect ``program``, consulting the content-addressed cache.

        Every random choice in the pipeline derives from
        ``config.seed``, so protection is a pure function of the input
        image and the config — which is exactly the cache key.  A hit
        deserializes a fresh image/report pair, indistinguishable from
        a recompute; ``use_cache=False`` forces the full pipeline.
        """
        cache = key = None
        if use_cache:
            from ..cache import content_key, get_cache

            cache = get_cache("protect", store_blobs=True)
        if cache is not None:
            key = content_key(
                "protect",
                PROTECT_CACHE_VERSION,
                program.image.fingerprint(),
                self.config.cache_key(),
            )
            hit, value = cache.get(key)
            if hit:
                image, report = value
                with get_tracer().span(
                    "protect",
                    program=program.name,
                    strategy=self.config.strategy,
                    cached=True,
                ) as span:
                    span.set_attribute("chains", len(report.chains))
                recorder = get_recorder()
                if recorder.enabled:
                    recorder.record(
                        "protect",
                        program=program.name,
                        strategy=self.config.strategy,
                        chains=len(report.chains),
                        cached=True,
                    )
                return ProtectedProgram(program, image, report)
        with get_tracer().span(
            "protect", program=program.name, strategy=self.config.strategy
        ) as span:
            protected = self._protect(program)
            span.set_attribute("chains", len(protected.report.chains))
        recorder = get_recorder()
        if recorder.enabled:
            recorder.record(
                "protect",
                program=program.name,
                strategy=self.config.strategy,
                chains=len(protected.report.chains),
                cached=False,
            )
        if cache is not None:
            cache.put(key, (protected.image, protected.report))
        return protected

    def _protect(self, program: Program) -> ProtectedProgram:
        config = self.config
        metrics = get_metrics()
        tracer = get_tracer()
        metrics.counter("protect.runs").inc()
        image = program.image.clone()
        report = ProtectionReport(program.name, config.strategy)
        rng = random.Random(config.seed)

        # -- step 1: verification code selection & translation ----------
        names = config.verification_functions
        if not names:
            names = [
                select_verification_function(program, config.time_threshold)
            ]
        for name in names:
            if name not in program.functions:
                raise ProtectError(f"unknown function {name!r}")

        ropdata = _Allocator(ROPDATA_BASE)
        compilers: Dict[str, RopCompiler] = {}
        chains: Dict[str, RopChain] = {}
        for name in names:
            frame_cell = ropdata.alloc(4)
            resume_cell = ropdata.alloc(4)
            compiler = RopCompiler(frame_cell, resume_cell)
            compilers[name] = compiler
            chains[name] = compiler.compile(program.functions[name])

        # -- step 2: stub slots + entry redirection ---------------------
        stub_addrs = {
            name: STUBS_BASE + index * _STUB_SLOT for index, name in enumerate(names)
        }
        for name in names:
            self._redirect_entry(image, name, stub_addrs[name])

        # -- step 3: gadget mapping --------------------------------------
        existing = find_gadgets(image, jobs=self.jobs)
        catalog = GadgetCatalog(existing)
        report.existing_gadgets = len(existing)
        metrics.counter("protect.gadgets_existing").inc(len(existing))

        required = {}
        for chain in chains.values():
            for kind in chain.required_kinds():
                required.setdefault(kind.key(), kind)
        # A kind is satisfied only by a near-return gadget: far-return
        # gadgets are excluded from fixed-shape (probabilistic)
        # resolution and from pivot kinds, so they cannot be the sole
        # provider.
        missing = [
            kind
            for kind in required.values()
            if not any(not g.far for g in catalog.of_kind(kind))
        ]
        if missing:
            gcode, inserted = emit_standard_gadgets(missing, GADGETS_BASE)
            image.add_section(Section(".gadgets", GADGETS_BASE, gcode, Perm.RX))
            for gadget in inserted:
                catalog.add(gadget)
            report.inserted_gadgets = len(inserted)
            metrics.counter("protect.gadgets_inserted").inc(len(inserted))

        protect_addrs = config.protect_addresses
        if protect_addrs is None:
            protect_addrs = self._default_protect_targets(image)
        report.protected_instruction_count = len(protect_addrs)
        report.protected_addresses = sorted(set(protect_addrs))
        target_bytes = set(protect_addrs)
        for gadget in existing:
            if any(addr in target_bytes for addr in gadget.span()):
                catalog.mark_preferred(gadget.address)
        report.preferred_gadgets = len(catalog.preferred)
        metrics.gauge("protect.gadgets_preferred").set(len(catalog.preferred))
        metrics.gauge("protect.protected_instructions").set(len(protect_addrs))

        # -- steps 4-5: strategy-specific serialization + stubs ----------
        chain_area = _Allocator(ROPCHAINS_BASE)
        enc_area = _Allocator(ENC_BASE)
        stub_specs: Dict[str, dict] = {}
        rt_needed = config.strategy != STRATEGY_CLEARTEXT or config.guard_chains

        rt_code = b""
        rt_spans = {}
        if rt_needed:
            rt_functions = [
                runtime.rt_xor_decrypt(),
                runtime.rt_rc4_decrypt(),
                runtime.rt_lincomb(),
                runtime.rt_guard(),
            ]
            rt_code, spans, _ = compile_functions(
                rt_functions, base=RT_BASE, entry_main=None
            )
            image.add_section(Section(".parallaxrt", RT_BASE, rt_code, Perm.RX))
            rt_spans = {fname: RT_BASE + start for fname, (start, _end) in spans.items()}

        span_map = catalog.span_map()
        for name in names:
            with tracer.span("emit_chain", function=name) as span:
                record = self._emit_chain(
                    name,
                    chains[name],
                    catalog,
                    rng,
                    chain_area,
                    enc_area,
                    ropdata,
                    rt_spans,
                    stub_addrs[name],
                    stub_specs,
                    span_map,
                )
                span.set_attribute("words", record.word_count)
            report.chains.append(record)
            metrics.counter("protect.chains_emitted").inc()
            metrics.counter("protect.chain_words_total").inc(record.word_count)
            metrics.histogram("protect.chain_words").observe(record.word_count)
            metrics.histogram("protect.chain_overlapping").observe(
                record.overlapping_used
            )

        # §VI-C chain guards: checksum the (data-resident) chain
        # machinery from every stub.  Computed now, when the guarded
        # section contents are final.
        pre_calls: Tuple = ()
        if config.guard_chains:
            regions = [(RT_BASE, bytes(rt_code))]
            if enc_area.blob:
                regions.append((ENC_BASE, bytes(enc_area.blob)))
            if config.strategy == STRATEGY_CLEARTEXT and chain_area.blob:
                regions.append((ROPCHAINS_BASE, bytes(chain_area.blob)))
            guard_addr = rt_spans["rt_guard"]
            pre_calls = tuple(
                (
                    guard_addr,
                    (
                        base_addr,
                        len(blob) // 4,
                        runtime.checksum_words_reference(blob),
                    ),
                )
                for base_addr, blob in regions
            )
            report.add_note(
                f"chain guards over {len(pre_calls)} data region(s) (§VI-C)"
            )

        stub_section = bytearray(_STUB_SLOT * len(names))
        for index, name in enumerate(names):
            spec = stub_specs[name]
            stub = build_loader_stub(
                stub_addrs[name],
                frame_cell=spec["frame_cell"],
                resume_cell=spec["resume_cell"],
                chain_addr=spec["chain_addr"],
                decrypt_call=spec["decrypt_call"],
                decrypt_args=spec["decrypt_args"],
                pre_calls=pre_calls,
            )
            blob = stub.code
            if len(blob) > _STUB_SLOT:
                raise ProtectError(f"stub for {name} exceeds its slot")
            stub_section[index * _STUB_SLOT : index * _STUB_SLOT + len(blob)] = blob
        image.add_section(Section(".stubs", STUBS_BASE, bytes(stub_section), Perm.RX))
        image.add_section(
            Section(".ropdata", ROPDATA_BASE, bytes(ropdata.blob), Perm.RW)
        )
        image.add_section(
            Section(".ropchains", ROPCHAINS_BASE, bytes(chain_area.blob), Perm.RW)
        )
        if enc_area.blob:
            image.add_section(Section(".ropcenc", ENC_BASE, bytes(enc_area.blob), Perm.R))

        image.metadata["parallax"] = {
            "strategy": config.strategy,
            "verification_functions": list(names),
        }
        return ProtectedProgram(program, image, report)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _redirect_entry(image: BinaryImage, name: str, stub_addr: int) -> None:
        symbol = image.symbols[name]
        if symbol.size < 5:
            raise ProtectError(f"function {name} too small to redirect")
        rel = stub_addr - (symbol.vaddr + 5)
        image.write(symbol.vaddr, b"\xe9" + (rel & 0xFFFFFFFF).to_bytes(4, "little"))

    @staticmethod
    def _default_protect_targets(image: BinaryImage) -> List[int]:
        """Addresses of likely attack targets: control flow + syscalls."""
        targets = []
        for section in image.executable_sections():
            for insn in decode_all_cached(
                bytes(section.data), address=section.vaddr, stop_on_error=True
            ):
                if insn.is_control_flow or insn.mnemonic == "int":
                    targets.extend(range(insn.address, insn.address + insn.length))
        return targets

    def _emit_chain(
        self,
        name: str,
        chain: RopChain,
        catalog: GadgetCatalog,
        rng: random.Random,
        chain_area: _Allocator,
        enc_area: _Allocator,
        ropdata: _Allocator,
        rt_spans: Dict[str, int],
        stub_addr: int,
        stub_specs: Dict[str, dict],
        span_map: Optional[Dict[int, int]] = None,
    ) -> ChainRecord:
        config = self.config
        strategy = config.strategy

        if strategy == STRATEGY_LINEAR:
            return self._emit_linear(
                name, chain, catalog, rng, chain_area, enc_area, ropdata,
                rt_spans, stub_addr, stub_specs, span_map,
            )

        resolved = chain.resolve(catalog)
        # Two-pass: layout depends on the base address only through the
        # label words, whose count is fixed, so size is stable.
        size = resolved.byte_size
        chain_addr = chain_area.alloc(size)
        payload = resolved.to_bytes(chain_addr)

        overlapping = sum(
            1 for addr in resolved.gadget_addresses() if addr in catalog.preferred
        )
        decrypt_call = None
        decrypt_args: Tuple[int, ...] = ()

        if strategy == STRATEGY_CLEARTEXT:
            offset = chain_addr - chain_area.base
            chain_area.blob[offset : offset + len(payload)] = payload
        elif strategy == STRATEGY_XOR:
            seed = rng.randrange(1, 1 << 32)
            enc = xor_crypt_words(seed, payload)
            enc_addr = enc_area.alloc(len(enc), init=enc)
            decrypt_call = rt_spans["rt_xor_decrypt"]
            decrypt_args = (chain_addr, enc_addr, len(payload) // 4, seed)
        elif strategy == STRATEGY_RC4:
            key = bytes(rng.randrange(256) for _ in range(16))
            enc = rc4_crypt(key, payload)
            enc_addr = enc_area.alloc(len(enc), init=enc)
            workspace = ropdata.alloc(runtime.RC4_WORKSPACE_SIZE, init=key)
            decrypt_call = rt_spans["rt_rc4_decrypt"]
            decrypt_args = (chain_addr, enc_addr, len(payload), workspace)
        else:
            raise ProtectError(f"unhandled strategy {strategy!r}")

        stub_specs[name] = {
            "frame_cell": _frame_cell_of(chain),
            "resume_cell": _resume_cell_of(chain),
            "chain_addr": chain_addr,
            "decrypt_call": decrypt_call,
            "decrypt_args": decrypt_args,
        }
        return ChainRecord(
            function=name,
            chain_addr=chain_addr,
            word_count=resolved.word_count,
            gadget_addresses=resolved.gadget_addresses(),
            overlapping_used=overlapping,
            stub_addr=stub_addr,
            gadget_spans=_spans_for(resolved.gadget_addresses(), span_map),
        )

    def _emit_linear(
        self,
        name: str,
        chain: RopChain,
        catalog: GadgetCatalog,
        rng: random.Random,
        chain_area: _Allocator,
        enc_area: _Allocator,
        ropdata: _Allocator,
        rt_spans: Dict[str, int],
        stub_addr: int,
        stub_specs: Dict[str, dict],
        span_map: Optional[Dict[int, int]] = None,
    ) -> ChainRecord:
        """§V-B probabilistic chains: N fixed-shape variants, an index
        table, and runtime regeneration by linear combination."""
        config = self.config
        n = config.n_variants

        variants = [
            chain.resolve(catalog, rng=rng, fixed_shape=True) for _ in range(n)
        ]
        sizes = {variant.byte_size for variant in variants}
        if len(sizes) != 1:
            raise ProtectError("linear variants must have identical shape")
        size = sizes.pop()
        chain_addr = chain_area.alloc(size)

        table = bytearray()
        gadget_addresses = []
        for variant in variants:
            payload = variant.to_bytes(chain_addr)
            table += payload  # canonical basis: index mask == word value
            gadget_addresses.extend(variant.gadget_addresses())
        table_addr = enc_area.alloc(len(table), init=bytes(table))

        ctrl = bytearray(runtime.LC_CTRL_SIZE)
        seed = rng.randrange(1, 1 << 32)
        ctrl[0:4] = seed.to_bytes(4, "little")
        ctrl[4:8] = (n - 1).to_bytes(4, "little")
        for bit in range(32):
            offset = runtime.LC_BASIS_OFFSET + 4 * bit
            ctrl[offset : offset + 4] = (1 << bit).to_bytes(4, "little")
        ctrl_addr = ropdata.alloc(len(ctrl), init=bytes(ctrl))

        overlapping = sum(
            1 for addr in gadget_addresses if addr in catalog.preferred
        )
        stub_specs[name] = {
            "frame_cell": _frame_cell_of(chain),
            "resume_cell": _resume_cell_of(chain),
            "chain_addr": chain_addr,
            "decrypt_call": rt_spans["rt_lincomb"],
            "decrypt_args": (chain_addr, table_addr, size // 4, ctrl_addr),
        }
        return ChainRecord(
            function=name,
            chain_addr=chain_addr,
            word_count=size // 4,
            gadget_addresses=gadget_addresses,
            overlapping_used=overlapping,
            stub_addr=stub_addr,
            variants=n,
            gadget_spans=_spans_for(gadget_addresses, span_map),
        )


def _spans_for(
    addresses: Iterable[int], span_map: Optional[Dict[int, int]]
) -> Dict[int, int]:
    """Byte spans for the distinct gadgets a chain dispatches through."""
    if not span_map:
        return {}
    return {a: span_map[a] for a in set(addresses) if a in span_map}


def _frame_cell_of(chain: RopChain) -> int:
    if chain.frame_cell is None:
        raise ProtectError("chain missing frame cell (not compiler-built?)")
    return chain.frame_cell


def _resume_cell_of(chain: RopChain) -> int:
    if chain.resume_cell is None:
        raise ProtectError("chain missing resume cell (not compiler-built?)")
    return chain.resume_cell


def protect_program(program: Program, config: Optional[ProtectConfig] = None):
    """Convenience one-shot protection."""
    return Parallax(config).protect(program)
