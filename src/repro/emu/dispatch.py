"""Mnemonic -> handler dispatch table shared by both execution engines.

Each handler implements the architectural semantics of one mnemonic,
operating on an :class:`~repro.emu.emulator.Emulator` and a decoded
:class:`~repro.x86.instruction.Instruction`.  The step engine calls
handlers straight out of :data:`DISPATCH`; the block engine
(:mod:`repro.emu.blocks`) pre-binds them per compiled instruction and
falls back to them for every shape its specializer does not inline —
so there is exactly one implementation of every instruction's
semantics, and the two engines cannot drift apart.

Handlers assume the caller has already advanced ``cpu.eip`` past the
instruction (so ``cpu.eip`` is the fall-through address), exactly as
hardware exposes the return address to ``call``.
"""

from __future__ import annotations

from ..x86.operands import Mem, to_signed
from .cpu import MASK32
from .errors import DivideError, EmulationError, Halted

#: Cycle cost per mnemonic (default 1); memory operands add 1 each.
CYCLE_COSTS = {
    "mul": 4,
    "imul": 4,
    "div": 24,
    "idiv": 24,
    "call": 2,
    "ret": 2,
    "retf": 3,
    "pushad": 8,
    "popad": 8,
    "leave": 2,
    "int": 60,
}

#: Extra cycles when a return's target does not match the shadow
#: return-address stack — the branch-predictor miss that makes ROP
#: chains an order of magnitude slower than straight code on real
#: hardware.  Calls/returns in ordinary code pair up and stay cheap.
RET_MISPREDICT_PENALTY = 18

#: Depth of the modelled return-stack buffer (typical hardware: 16).
RAS_DEPTH = 16

#: Condition-code suffixes understood by jcc/setcc.
CONDITION_CODES = (
    "o", "no", "b", "ae", "e", "ne", "be", "a",
    "s", "ns", "p", "np", "l", "ge", "le", "g",
)


def cost_of(insn) -> int:
    """Static cycle cost of ``insn`` (memoized on the instruction)."""
    cost = insn.cycle_cost
    if cost is None:
        cost = CYCLE_COSTS.get(insn.mnemonic, 1)
        for op in insn.operands:
            if isinstance(op, Mem):
                cost += 1
        insn.cycle_cost = cost
    return cost


# ----------------------------------------------------------------------
# Handlers
# ----------------------------------------------------------------------


def _op_mov(emu, insn):
    ops = insn.operands
    emu._write_operand(ops[0], emu._read_operand(ops[1], emu._width_of(ops[0])))


def _op_push(emu, insn):
    emu.push(emu._read_operand(insn.operands[0], 32))


def _op_pop(emu, insn):
    emu._write_operand(insn.operands[0], emu.pop())


def _op_ret(emu, insn):
    cpu = emu.cpu
    cpu.eip = emu.pop()
    if insn.operands:
        cpu.esp = (cpu.esp + insn.operands[0].value) & MASK32
    emu._predict_return(cpu.eip)


def _op_retf(emu, insn):
    cpu = emu.cpu
    cpu.eip = emu.pop()
    emu.pop()  # discard code-segment word
    if insn.operands:
        cpu.esp = (cpu.esp + insn.operands[0].value) & MASK32
    emu._predict_return(cpu.eip)


def _op_call(emu, insn):
    cpu = emu.cpu
    target = emu._branch_target(insn.operands[0])
    emu.push(cpu.eip)
    ras = emu._ras
    if len(ras) >= RAS_DEPTH:
        del ras[0]
    ras.append(cpu.eip)
    cpu.eip = target


def _op_jmp(emu, insn):
    emu.cpu.eip = emu._branch_target(insn.operands[0])


def _make_jcc(cc):
    def handler(emu, insn):
        cpu = emu.cpu
        if cpu.condition(cc):
            cpu.eip = emu._branch_target(insn.operands[0])

    return handler


def _make_setcc(cc):
    def handler(emu, insn):
        emu._write_operand(insn.operands[0], int(emu.cpu.condition(cc)))

    return handler


def _op_add(emu, insn):
    ops = insn.operands
    width = emu._width_of(ops[0])
    a = emu._read_operand(ops[0], width)
    b = emu._read_operand(ops[1], width)
    emu._write_operand(ops[0], emu.cpu.set_add_flags(a, b, 0, width))


def _op_adc(emu, insn):
    ops = insn.operands
    cpu = emu.cpu
    width = emu._width_of(ops[0])
    a = emu._read_operand(ops[0], width)
    b = emu._read_operand(ops[1], width)
    emu._write_operand(ops[0], cpu.set_add_flags(a, b, int(cpu.cf), width))


def _op_sub(emu, insn):
    ops = insn.operands
    width = emu._width_of(ops[0])
    a = emu._read_operand(ops[0], width)
    b = emu._read_operand(ops[1], width)
    emu._write_operand(ops[0], emu.cpu.set_sub_flags(a, b, 0, width))


def _op_sbb(emu, insn):
    ops = insn.operands
    cpu = emu.cpu
    width = emu._width_of(ops[0])
    a = emu._read_operand(ops[0], width)
    b = emu._read_operand(ops[1], width)
    emu._write_operand(ops[0], cpu.set_sub_flags(a, b, int(cpu.cf), width))


def _op_cmp(emu, insn):
    ops = insn.operands
    width = emu._width_of(ops[0])
    a = emu._read_operand(ops[0], width)
    b = emu._read_operand(ops[1], width)
    emu.cpu.set_sub_flags(a, b, 0, width)


def _make_logic(combine):
    def handler(emu, insn):
        ops = insn.operands
        width = emu._width_of(ops[0])
        a = emu._read_operand(ops[0], width)
        b = emu._read_operand(ops[1], width)
        result = combine(a, b)
        emu.cpu.set_logic_flags(result, width)
        emu._write_operand(ops[0], result)

    return handler


def _op_test(emu, insn):
    ops = insn.operands
    width = emu._width_of(ops[0])
    a = emu._read_operand(ops[0], width)
    b = emu._read_operand(ops[1], width)
    emu.cpu.set_logic_flags(a & b, width)


def _op_inc(emu, insn):
    cpu = emu.cpu
    width = emu._width_of(insn.operands[0])
    a = emu._read_operand(insn.operands[0], width)
    carry = cpu.cf  # inc/dec preserve CF
    result = cpu.set_add_flags(a, 1, 0, width)
    cpu.cf = carry
    emu._write_operand(insn.operands[0], result)


def _op_dec(emu, insn):
    cpu = emu.cpu
    width = emu._width_of(insn.operands[0])
    a = emu._read_operand(insn.operands[0], width)
    carry = cpu.cf
    result = cpu.set_sub_flags(a, 1, 0, width)
    cpu.cf = carry
    emu._write_operand(insn.operands[0], result)


def _op_neg(emu, insn):
    width = emu._width_of(insn.operands[0])
    a = emu._read_operand(insn.operands[0], width)
    emu._write_operand(insn.operands[0], emu.cpu.set_sub_flags(0, a, 0, width))


def _op_not(emu, insn):
    width = emu._width_of(insn.operands[0])
    a = emu._read_operand(insn.operands[0], width)
    emu._write_operand(insn.operands[0], ~a & ((1 << width) - 1))


def _op_lea(emu, insn):
    emu._write_operand(insn.operands[0], emu._effective_address(insn.operands[1]))


def _op_xchg(emu, insn):
    ops = insn.operands
    wa, wb = emu._width_of(ops[0]), emu._width_of(ops[1])
    a = emu._read_operand(ops[0], wa)
    b = emu._read_operand(ops[1], wb)
    emu._write_operand(ops[0], b)
    emu._write_operand(ops[1], a)


def _make_shift(m):
    def handler(emu, insn):
        ops = insn.operands
        cpu = emu.cpu
        width = emu._width_of(ops[0])
        count = emu._read_operand(ops[1], 8) & 0x1F
        value = emu._read_operand(ops[0], width)
        if count == 0:
            return
        mask = (1 << width) - 1
        if m == "shl":
            result = (value << count) & mask
            cpu.cf = bool((value >> (width - count)) & 1) if count <= width else False
        elif m == "shr":
            result = (value >> count) & mask
            cpu.cf = bool((value >> (count - 1)) & 1)
        else:  # sar
            signed = to_signed(value, width)
            cpu.cf = bool((signed >> (count - 1)) & 1) if count <= width else signed < 0
            result = (signed >> count) & mask if count < width else (mask if signed < 0 else 0)
        cpu.zf = result == 0
        cpu.sf = bool(result >> (width - 1))
        emu._write_operand(ops[0], result)

    return handler


def _op_pushad(emu, insn):
    cpu = emu.cpu
    original_esp = cpu.esp
    for code in range(8):
        emu.push(original_esp if code == 4 else cpu.regs[code])


def _op_popad(emu, insn):
    cpu = emu.cpu
    for code in reversed(range(8)):
        value = emu.pop()
        if code != 4:  # esp is popped but discarded
            cpu.regs[code] = value


def _op_leave(emu, insn):
    cpu = emu.cpu
    cpu.esp = cpu.ebp
    cpu.ebp = emu.pop()


def _op_movzx(emu, insn):
    ops = insn.operands
    emu._write_operand(ops[0], emu._read_operand(ops[1], emu._width_of(ops[1])))


def _op_movsx(emu, insn):
    ops = insn.operands
    src_width = emu._width_of(ops[1])
    value = emu._read_operand(ops[1], src_width)
    emu._write_operand(ops[0], to_signed(value, src_width) & MASK32)


def _op_multiply(emu, insn):
    m = insn.mnemonic
    ops = insn.operands
    cpu = emu.cpu
    if m == "imul" and len(ops) == 3:  # imul r32, r/m32, imm
        a = to_signed(emu._read_operand(ops[1], 32), 32)
        b = ops[2].signed
        product = a * b
        result = product & MASK32
        cpu.cf = cpu.of = product != to_signed(result, 32)
        emu._write_operand(ops[0], result)
    elif m == "imul" and len(ops) == 2:  # imul r32, r/m32
        a = to_signed(cpu.get(ops[0]), 32)
        b = to_signed(emu._read_operand(ops[1], 32), 32)
        product = a * b
        result = product & MASK32
        cpu.cf = cpu.of = product != to_signed(result, 32)
        emu._write_operand(ops[0], result)
    else:  # one-operand mul/imul: edx:eax = eax * op
        width = emu._width_of(ops[0])
        if width != 32:
            raise EmulationError("8-bit multiply not supported", eip=cpu.eip)
        a = cpu.regs[0]
        b = emu._read_operand(ops[0], 32)
        if m == "imul":
            product = to_signed(a, 32) * to_signed(b, 32)
        else:
            product = a * b
        cpu.regs[0] = product & MASK32
        cpu.regs[2] = (product >> 32) & MASK32
        if m == "imul":
            # CF=OF unless edx:eax is just the sign extension of eax.
            cpu.cf = cpu.of = product != to_signed(product & MASK32, 32)
        else:
            cpu.cf = cpu.of = cpu.regs[2] != 0


def _op_divide(emu, insn):
    m = insn.mnemonic
    cpu = emu.cpu
    divisor = emu._read_operand(insn.operands[0], 32)
    dividend = (cpu.regs[2] << 32) | cpu.regs[0]
    if m == "idiv":
        divisor = to_signed(divisor, 32)
        dividend = to_signed(dividend, 64)
    if divisor == 0:
        raise DivideError("division by zero", eip=cpu.eip)
    if m == "idiv":
        quotient = int(dividend / divisor)  # truncation toward zero
        remainder = dividend - quotient * divisor
        if not -(1 << 31) <= quotient < (1 << 31):
            raise DivideError("idiv quotient overflow", eip=cpu.eip)
    else:
        quotient, remainder = divmod(dividend, divisor)
        if quotient > MASK32:
            raise DivideError("div quotient overflow", eip=cpu.eip)
    cpu.regs[0] = quotient & MASK32
    cpu.regs[2] = remainder & MASK32


def _op_cdq(emu, insn):
    cpu = emu.cpu
    cpu.regs[2] = MASK32 if cpu.regs[0] & 0x8000_0000 else 0


def _op_nop(emu, insn):
    pass


def _op_int(emu, insn):
    cpu = emu.cpu
    if insn.operands[0].value == 0x80:
        cpu.regs[0] = emu.os.dispatch(emu) & MASK32
    else:
        raise EmulationError(
            f"unhandled software interrupt {insn.operands[0].value:#x}", eip=cpu.eip
        )


def _op_int3(emu, insn):
    raise EmulationError("breakpoint trap (int3)", eip=emu.cpu.eip)


def _op_hlt(emu, insn):
    raise Halted("hlt executed", eip=emu.cpu.eip)


def _build_dispatch():
    table = {
        "mov": _op_mov,
        "push": _op_push,
        "pop": _op_pop,
        "ret": _op_ret,
        "retf": _op_retf,
        "call": _op_call,
        "jmp": _op_jmp,
        "add": _op_add,
        "adc": _op_adc,
        "sub": _op_sub,
        "sbb": _op_sbb,
        "cmp": _op_cmp,
        "and": _make_logic(lambda a, b: a & b),
        "or": _make_logic(lambda a, b: a | b),
        "xor": _make_logic(lambda a, b: a ^ b),
        "test": _op_test,
        "inc": _op_inc,
        "dec": _op_dec,
        "neg": _op_neg,
        "not": _op_not,
        "lea": _op_lea,
        "xchg": _op_xchg,
        "shl": _make_shift("shl"),
        "shr": _make_shift("shr"),
        "sar": _make_shift("sar"),
        "pushad": _op_pushad,
        "popad": _op_popad,
        "leave": _op_leave,
        "movzx": _op_movzx,
        "movsx": _op_movsx,
        "mul": _op_multiply,
        "imul": _op_multiply,
        "div": _op_divide,
        "idiv": _op_divide,
        "cdq": _op_cdq,
        "nop": _op_nop,
        "int": _op_int,
        "int3": _op_int3,
        "hlt": _op_hlt,
    }
    for cc in CONDITION_CODES:
        table["j" + cc] = _make_jcc(cc)
        table["set" + cc] = _make_setcc(cc)
    return table


#: The one table both engines execute from.
DISPATCH = _build_dispatch()
