"""Attack primitives and the harness."""

import pytest

from repro.attacks import (
    evaluate_patch_attack, force_branch, invert_branch, nop_out,
    nop_out_instruction, stub_out_function, wipe_chain_patch,
    garbage_chain_patch, run_with_icache_patches,
)
from repro.x86 import decode


def test_stub_out_function_patch(small_wget):
    patch = stub_out_function(small_wget.image, "ptrace_detect", 1)
    assert patch.new[0] == 0xB8 and patch.new[5] == 0xC3


def test_invert_and_force_branch(small_wget):
    from repro.attacks import find_branches_in_function
    branches = find_branches_in_function(small_wget.image, "main")
    assert branches
    branch = branches[0]
    inverted = invert_branch(small_wget.image, branch.address)
    insn = decode(inverted.new, 0)
    assert insn.is_conditional and insn.mnemonic != branch.mnemonic
    forced = force_branch(small_wget.image, branch.address)
    insn2 = decode(forced.new, 0, address=branch.address)
    assert insn2.mnemonic == "jmp"
    assert insn2.branch_target() == branch.branch_target()


def test_antidebug_crack_succeeds_on_unprotected(small_wget, small_wget_baseline):
    """Without Parallax the classic crack works: the program runs
    normally under a debugger."""
    patch = stub_out_function(small_wget.image, "ptrace_detect", 1)
    outcome = evaluate_patch_attack(
        small_wget.image, [patch], small_wget_baseline,
        "crack-unprotected", debugger_attached=True,
    )
    assert not outcome.detected  # attacker wins


def test_tampering_used_gadget_detected(protected_wget_cleartext, small_wget_baseline):
    """Overwriting a byte of a gadget the chain uses must break it."""
    record = protected_wget_cleartext.report.chains[0]
    image = protected_wget_cleartext.image
    target = next(a for a in record.gadget_addresses if image.section_at(a).name != ".gadgets")
    patch = nop_out(image, target, 1)
    outcome = evaluate_patch_attack(image, [patch], small_wget_baseline, "gadget-tamper")
    assert outcome.detected


def test_wipe_chain_detected(protected_wget_cleartext, small_wget_baseline):
    patch = wipe_chain_patch(protected_wget_cleartext)
    outcome = evaluate_patch_attack(
        protected_wget_cleartext.image, [patch], small_wget_baseline, "wipe"
    )
    assert outcome.detected


def test_garbage_chain_detected(protected_wget_cleartext, small_wget_baseline):
    patch = garbage_chain_patch(protected_wget_cleartext)
    outcome = evaluate_patch_attack(
        protected_wget_cleartext.image, [patch], small_wget_baseline, "garbage"
    )
    assert outcome.detected


def test_icache_patch_changes_execution_only(small_wget):
    """Sanity: the Wurster primitive affects fetch, not data reads."""
    patch = stub_out_function(small_wget.image, "ptrace_detect", 1)
    run = run_with_icache_patches(small_wget.image, [patch], debugger_attached=True)
    assert run.exit_status != 99  # crack took effect via the i-view
