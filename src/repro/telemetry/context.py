"""Request-scoped telemetry contexts: labeled, contextvars-propagated.

A :class:`TelemetryContext` carries a label set (request id, tenant,
engine, workload — any ``str -> str`` mapping) and scopes telemetry to
it: while the context is active, :func:`repro.telemetry.get_metrics`
returns the context's *child registry* (whose ``base_labels`` stamp the
labels on every instrument), :func:`~repro.telemetry.get_tracer`
returns a child tracer, and :func:`~repro.telemetry.get_recorder`
returns a view of the process-wide flight recorder that attaches the
labels to every event as a ``ctx`` field — so events stream live (to
subscribers, rolling windows and ``--journal-follow``) instead of
waiting for the context to close.

On exit the context **flushes**: the child registry's labeled samples
merge into the global registry (guarded by a lock, so concurrent
contexts on different threads reconcile exactly), and the child
tracer's spans are adopted into the global trace with the labels as
``ctx.*`` attributes.  Per-label sums therefore always equal what an
unlabeled run would have recorded — the reconciliation invariant
``tests/pipeline/test_context_isolation.py`` pins down.

Propagation:

* **threads / asyncio** — contexts live in a :mod:`contextvars`
  ContextVar, so each thread (and each asyncio task) sees only its own
  active context;
* **multiprocessing pool workers** — the pipeline captures
  :func:`current_labels` into each task; workers run label-free under
  private registries/recorders (see :func:`suspend_context`, which
  also keeps the inline ``jobs=1`` path identical to the pooled one)
  and ship samples/spans/events back to the parent, which merges them
  *inside* its active context so the labels apply exactly once.
"""

from __future__ import annotations

import threading
from contextvars import ContextVar
from typing import Dict, Mapping, Optional

from .metrics import MetricsRegistry, _normalize_labels
from .tracing import Tracer

__all__ = [
    "TelemetryContext",
    "telemetry_context",
    "current_context",
    "current_labels",
    "suspend_context",
    "clear_context",
    "task_telemetry",
    "current_task_telemetry",
]

#: The active context for this thread / task (None = global telemetry).
_ACTIVE: ContextVar[Optional["TelemetryContext"]] = ContextVar(
    "repro.telemetry.context", default=None
)

#: Task-private telemetry override for this thread / task (wins over
#: both the active context and the process-wide objects).
_TASK_LOCAL: ContextVar[Optional["task_telemetry"]] = ContextVar(
    "repro.telemetry.task_local", default=None
)

#: Serializes flushes into the global registry/tracer across threads.
_FLUSH_LOCK = threading.Lock()


def current_context() -> Optional["TelemetryContext"]:
    """The active :class:`TelemetryContext`, or ``None``."""
    return _ACTIVE.get()


def current_labels() -> Dict[str, str]:
    """The active context's labels (``{}`` when no context is active)."""
    ctx = _ACTIVE.get()
    return dict(ctx.labels) if ctx is not None else {}


def clear_context() -> None:
    """Drop any inherited active context (pool-worker initializer).

    ``fork``-started workers inherit the parent's ContextVar state; a
    worker that kept the parent's context would write into a *copy* of
    the parent's child registry and the samples would never make it
    back.  Workers instead run context-free and ship samples home.
    """
    _ACTIVE.set(None)
    _TASK_LOCAL.set(None)


def current_task_telemetry() -> Optional["task_telemetry"]:
    """The active task-private telemetry override, or ``None``."""
    return _TASK_LOCAL.get()


class task_telemetry:
    """Install task-private metrics/tracer/recorder for this thread.

    Pipeline task bodies (``protect-all`` tasks, parallel gadget
    scans) collect their telemetry into private objects so the parent
    can merge samples deterministically.  Swapping the *process-wide*
    objects for that would race: two threads running inline tasks
    concurrently would overwrite each other's private registries and
    one request's counts would land under the other's labels.  This
    override lives in a :mod:`contextvars` ContextVar instead, so it is
    visible only to the installing thread/task and the reconciliation
    invariant survives threading.

    Any field left ``None`` falls through to the normal resolution
    (active context, then process-wide object).
    """

    __slots__ = ("metrics", "tracer", "recorder", "_token")

    def __init__(self, metrics=None, tracer=None, recorder=None):
        self.metrics = metrics
        self.tracer = tracer
        self.recorder = recorder
        self._token = None

    def __enter__(self) -> "task_telemetry":
        if self._token is not None:
            raise RuntimeError("task telemetry override is not reentrant")
        self._token = _TASK_LOCAL.set(self)
        return self

    def __exit__(self, *exc) -> bool:
        _TASK_LOCAL.reset(self._token)
        self._token = None
        return False


class _ContextRecorder:
    """View of the global flight recorder that stamps context labels.

    Events recorded through the view reach the real recorder (and its
    subscribers) immediately with a ``ctx`` field carrying the label
    set; everything else delegates, so exporters and hot-path
    ``recorder.enabled`` guards behave identically.
    """

    __slots__ = ("_labels",)

    def __init__(self, labels: Dict[str, str]):
        object.__setattr__(self, "_labels", labels)

    @property
    def _base(self):
        from .recorder import _recorder

        return _recorder

    @property
    def enabled(self) -> bool:
        return self._base.enabled

    def record(self, kind: str, **fields) -> None:
        base = self._base
        if not base.enabled:
            return
        base.record(kind, ctx=self._labels, **fields)

    def ingest(self, events, labels=None, pid=None) -> int:
        merged = dict(self._labels)
        if labels:
            merged.update(labels)
        return self._base.ingest(events, labels=merged, pid=pid)

    def __len__(self) -> int:
        return len(self._base)

    def __getattr__(self, name: str):
        return getattr(self._base, name)

    def __repr__(self) -> str:
        return f"<_ContextRecorder {self._labels} -> {self._base!r}>"


class TelemetryContext:
    """One labeled telemetry scope; use as a context manager.

    ::

        with TelemetryContext({"request": "r-17", "tenant": "acme"}):
            protect_all(jobs=2)           # everything lands under r-17

    Nested contexts merge labels (inner keys win); the child registry
    and tracer mirror the *global* enabled state at entry, so a context
    under disabled telemetry costs two small allocations and nothing
    else.
    """

    __slots__ = (
        "labels",
        "metrics",
        "tracer",
        "recorder",
        "_token",
        "_flushed",
    )

    def __init__(self, labels: Optional[Mapping] = None):
        from . import get_metrics, get_tracer

        parent = _ACTIVE.get()
        merged: Dict[str, str] = dict(parent.labels) if parent else {}
        merged.update(_normalize_labels(labels))
        if not merged:
            raise ValueError("a telemetry context needs at least one label")
        self.labels = merged
        # Mirror the *currently visible* telemetry's enabled state (the
        # global one, or an enclosing context's child objects).
        self.metrics = MetricsRegistry(
            enabled=get_metrics().enabled, base_labels=merged
        )
        self.tracer = Tracer(enabled=get_tracer().enabled)
        self.recorder = _ContextRecorder(merged)
        self._token = None
        self._flushed = False

    # -- scope management ----------------------------------------------

    def __enter__(self) -> "TelemetryContext":
        if self._token is not None:
            raise RuntimeError("telemetry context is not reentrant")
        self._token = _ACTIVE.set(self)
        return self

    def __exit__(self, *exc) -> bool:
        _ACTIVE.reset(self._token)
        self._token = None
        self.flush()
        return False

    # -- reconciliation -------------------------------------------------

    def snapshot(self) -> Dict[str, dict]:
        """The child registry's labeled samples (pre- or post-flush)."""
        return self.metrics.to_dict()

    def flush(self) -> None:
        """Merge the child registry and tracer into the global objects.

        Idempotent per batch: merged samples/spans are cleared from the
        child, so flushing mid-run and again at exit never double
        counts.  The merge into the shared global registry is locked —
        two contexts finishing on different threads interleave safely.
        """
        from . import _global_metrics, _global_tracer

        samples = self.metrics.to_dict()
        spans = self.tracer.to_events()
        if not samples and not spans:
            return
        self.metrics.reset()
        self.tracer.reset()
        attributes = {f"ctx.{k}": v for k, v in self.labels.items()}
        with _FLUSH_LOCK:
            if samples:
                # Samples already carry the context labels (base_labels
                # stamped them at accessor time) — merge verbatim.
                _global_metrics().merge_samples(samples)
            if spans:
                _global_tracer().ingest(spans, extra_attributes=attributes)
        self._flushed = True

    def __repr__(self) -> str:
        return f"<TelemetryContext {self.labels}>"


def telemetry_context(**labels) -> TelemetryContext:
    """Keyword-argument sugar: ``with telemetry_context(request="r1"):``."""
    return TelemetryContext(labels)


class suspend_context:
    """Temporarily deactivate the current context (``with`` block).

    Pipeline task bodies run under this so the inline ``jobs=1`` path
    behaves exactly like a pool worker: samples collect in the task's
    private registry and are labeled once, by the parent, at merge
    time.
    """

    __slots__ = ("_token",)

    def __enter__(self) -> "suspend_context":
        self._token = _ACTIVE.set(None)
        return self

    def __exit__(self, *exc) -> bool:
        _ACTIVE.reset(self._token)
        return False
