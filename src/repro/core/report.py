"""Protection reports: what Parallax did to a binary."""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Tuple


def coalesce_addresses(addresses: Iterable[int]) -> List[Tuple[int, int]]:
    """Sorted ``(start, length)`` runs of consecutive byte addresses."""
    runs: List[Tuple[int, int]] = []
    start = prev = None
    for addr in sorted(set(addresses)):
        if start is None:
            start = prev = addr
            continue
        if addr == prev + 1:
            prev = addr
            continue
        runs.append((start, prev - start + 1))
        start = prev = addr
    if start is not None:
        runs.append((start, prev - start + 1))
    return runs


class ChainRecord:
    """Bookkeeping for one verification chain."""

    __slots__ = (
        "function",
        "chain_addr",
        "word_count",
        "gadget_addresses",
        "overlapping_used",
        "stub_addr",
        "variants",
        "gadget_spans",
    )

    def __init__(
        self,
        function: str,
        chain_addr: int,
        word_count: int,
        gadget_addresses: List[int],
        overlapping_used: int,
        stub_addr: int,
        variants: int = 1,
        gadget_spans: Optional[Dict[int, int]] = None,
    ):
        self.function = function
        self.chain_addr = chain_addr
        self.word_count = word_count
        self.gadget_addresses = gadget_addresses
        self.overlapping_used = overlapping_used
        self.stub_addr = stub_addr
        self.variants = variants
        #: ``{gadget address: end}`` for the distinct gadgets this chain
        #: dispatches through — the byte ranges the chain implicitly
        #: verifies (fed to the coverage observatory).
        self.gadget_spans = dict(gadget_spans or {})

    def guarded_bytes(self) -> List[int]:
        """Every byte address covered by one of this chain's gadgets."""
        out: List[int] = []
        for address, end in self.gadget_spans.items():
            out.extend(range(address, end))
        return out

    def to_dict(self) -> dict:
        return {
            "function": self.function,
            "chain_addr": self.chain_addr,
            "word_count": self.word_count,
            "gadget_addresses": list(self.gadget_addresses),
            "distinct_gadgets": len(set(self.gadget_addresses)),
            "overlapping_used": self.overlapping_used,
            "stub_addr": self.stub_addr,
            "variants": self.variants,
            "gadget_spans": [
                [address, end] for address, end in sorted(self.gadget_spans.items())
            ],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def __repr__(self) -> str:
        return (
            f"<ChainRecord {self.function} @{self.chain_addr:#x} "
            f"{self.word_count} words, {len(set(self.gadget_addresses))} gadgets "
            f"({self.overlapping_used} overlapping)>"
        )


class ProtectionReport:
    """Summary of a protection run."""

    def __init__(self, program: str, strategy: str):
        self.program = program
        self.strategy = strategy
        self.chains: List[ChainRecord] = []
        self.existing_gadgets = 0
        self.inserted_gadgets = 0
        self.preferred_gadgets = 0
        self.protected_instruction_count = 0
        #: sorted byte addresses the protector was asked to guard (the
        #: paper's instructions-to-protect, expanded to bytes).
        self.protected_addresses: List[int] = []
        self.notes: List[str] = []

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def summary(self) -> str:
        lines = [
            f"Parallax protection report: {self.program} [{self.strategy}]",
            f"  existing gadgets in binary : {self.existing_gadgets}",
            f"  standard gadgets inserted  : {self.inserted_gadgets}",
            f"  overlap-preferred gadgets  : {self.preferred_gadgets}",
        ]
        for record in self.chains:
            unique = len(set(record.gadget_addresses))
            lines.append(
                f"  chain {record.function}: {record.word_count} words, "
                f"{unique} distinct gadgets, {record.overlapping_used} overlapping, "
                f"{record.variants} variant(s), stub @{record.stub_addr:#x}"
            )
        lines.extend(f"  note: {note}" for note in self.notes)
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "program": self.program,
            "strategy": self.strategy,
            "existing_gadgets": self.existing_gadgets,
            "inserted_gadgets": self.inserted_gadgets,
            "preferred_gadgets": self.preferred_gadgets,
            "protected_instruction_count": self.protected_instruction_count,
            "protected_ranges": [
                [start, length]
                for start, length in coalesce_addresses(self.protected_addresses)
            ],
            "chains": [record.to_dict() for record in self.chains],
            "notes": list(self.notes),
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def __repr__(self) -> str:
        return f"<ProtectionReport {self.program} {self.strategy} chains={len(self.chains)}>"
