"""Concurrent telemetry contexts stay isolated and reconcile exactly.

Two requests run protect pipelines under distinct ``TelemetryContext``
labels — across threads and across pool workers — and the per-label
series in the global registry must sum to exactly what an unlabeled run
would have produced: no double counting, no cross-request bleed.
"""

import threading

from repro import telemetry
from repro.cache import cache_session
from repro.pipeline import protect_all
from repro.telemetry.context import telemetry_context, current_labels

NAMES = ["wget", "gzip"]


def _series_by_label(metrics, family, label_key):
    """Map label value -> sample value for one family, skipping unlabeled."""
    out = {}
    for key, sample in metrics.to_dict().items():
        if sample["name"] != family:
            continue
        labels = sample.get("labels") or {}
        if label_key in labels:
            out[labels[label_key]] = sample["value"]
    return out


def test_pool_run_reconciles_labeled_sums_with_global():
    with cache_session(enabled=False):
        with telemetry.telemetry_session() as (metrics, _tracer):
            for request in ("r1", "r2"):
                with telemetry_context(request=request):
                    protect_all(names=NAMES, jobs=2, use_cache=False)
    runs = _series_by_label(metrics, "protect.runs", "request")
    assert runs == {"r1": float(len(NAMES)), "r2": float(len(NAMES))}
    # the family total equals the sum of its labeled series: every
    # increment landed in exactly one request's bucket
    assert metrics.family_total("protect.runs") == 2 * len(NAMES)
    # histogram families re-slice per label too
    words = {
        key: sample
        for key, sample in metrics.to_dict().items()
        if sample["name"] == "protect.chain_words"
    }
    assert {
        sample["labels"]["request"] for sample in words.values()
    } == {"r1", "r2"}
    assert all(sample["count"] > 0 for sample in words.values())


def test_threaded_contexts_do_not_bleed():
    with cache_session(enabled=False):
        with telemetry.telemetry_session() as (metrics, _tracer):
            seen = {}
            errors = []

            def run(request, name):
                try:
                    with telemetry_context(request=request):
                        seen[request] = current_labels()
                        protect_all(names=[name], jobs=1, use_cache=False)
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [
                threading.Thread(target=run, args=("r1", "wget")),
                threading.Thread(target=run, args=("r2", "gzip")),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
    assert errors == []
    # contextvars give each thread its own active context
    assert seen == {"r1": {"request": "r1"}, "r2": {"request": "r2"}}
    runs = _series_by_label(metrics, "protect.runs", "request")
    assert runs == {"r1": 1.0, "r2": 1.0}
    assert metrics.family_total("protect.runs") == 2.0


def test_labeled_totals_match_unlabeled_baseline():
    with cache_session(enabled=False):
        with telemetry.telemetry_session() as (baseline, _t):
            protect_all(names=NAMES, jobs=2, use_cache=False)
        with telemetry.telemetry_session() as (labeled, _t):
            with telemetry_context(tenant="acme"):
                protect_all(names=NAMES, jobs=2, use_cache=False)
    base = baseline.to_dict()
    lab = labeled.to_dict()
    # every counter family present in the baseline shows up with the
    # same family total in the labeled run — labels re-slice, never drop
    for key, sample in base.items():
        if sample.get("type") != "counter":
            continue
        family = sample["name"]
        assert labeled.family_total(family) == baseline.family_total(
            family
        ), family


def test_context_events_reach_global_recorder_with_labels():
    with cache_session(enabled=False):
        with telemetry.telemetry_session(recorder=True) as (_m, _t):
            with telemetry_context(request="r9"):
                protect_all(names=["wget"], jobs=2, use_cache=False)
            events = telemetry.get_recorder().to_events()
    tasks = [e for e in events if e["kind"] == "pipeline.task"]
    assert tasks and all(
        e.get("ctx", {}).get("request") == "r9" for e in tasks
    )
