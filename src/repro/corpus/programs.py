"""The six corpus programs standing in for the paper's test set.

Each build function returns a runnable :class:`Program` whose
instruction mix is calibrated to the real program's character:

========  =====================================================  ==========
program   flavour                                                mix
========  =====================================================  ==========
wget      network client: header parsing, content copy, CRC      branchy I/O
nginx     server: request tokenizing, route table, responses    branch-dense
bzip2     block compressor: RLE, block sort, CRC                 memory/loop
gzip      stream compressor: LZ matching, checksums              memory/loop
gcc       compiler: lexer, symbol table, RPN evaluation           largest, most diverse
lame      encoder: fixed-point DSP, quantization                  mul/shift, few immediates
========  =====================================================  ==========

The mix drives the Fig. 6 protectability ordering (gcc highest, lame
lowest).  Every program also carries a ``digest_*`` function — an
operation-rich, rarely-called statistics helper that the §VII-B
selection algorithm picks as verification code; its branchiness is
tuned per program so the Fig. 5a chain slowdowns span the paper's
spread (wget's loop-and-branch digest translates into the slowest
chain, gcc's straight-line digest into the fastest).

Workload sizes put each program at a few million emulated cycles with
the digest contributing well under the paper's 2% profile threshold, so
whole-program protection overheads land in Fig. 5b territory.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..ropc import CodegenOptions, ir
from ..x86.registers import EAX, EBX, ECX, EDX, EDI, ESI
from . import builders
from .generator import FunctionGenerator, MixProfile
from .program import DATA_BASE, DataBuilder, Program, RODATA_BASE, call_const, input_bytes

PROGRAM_NAMES = ("wget", "nginx", "bzip2", "gzip", "gcc", "lame")


def _acc_xor_eax(f: ir.IRFunction) -> None:
    """Fold the last call's result into the ESI accumulator."""
    f.emit(ir.BinOp("xor", ESI, EAX))


def _count_down_loop(f: ir.IRFunction, label: str) -> None:
    """Decrement EDI; loop to ``label`` while non-zero."""
    f.emit(ir.Const(EDX, 1))
    f.emit(ir.BinOp("sub", EDI, EDX))
    f.emit(ir.Branch("ne", EDI, 0, label))


def _call_digest(f: ir.IRFunction, name: str, cell: int, every: int = 1) -> None:
    """digest(acc, block_counter, cell) with the accumulator updated.

    ``every`` (a power of two) calls the digest only on blocks whose
    counter is a multiple of it — how real programs checksum per N
    blocks, and the knob that keeps verification cost inside the Fig. 5b
    envelope.
    """
    skip = None
    if every > 1:
        skip = f"skip_digest_{len(f.body)}"
        f.emit(ir.Mov(EDX, EDI))
        f.emit(ir.Const(ECX, every - 1))
        f.emit(ir.BinOp("and", EDX, ECX))
        f.emit(ir.Branch("ne", EDX, 0, skip))
    f.emit(ir.Mov(EBX, ESI))
    f.emit(ir.Mov(ECX, EDI))
    f.emit(ir.Const(EDX, cell))
    f.emit(ir.Call(EAX, name, (EBX, ECX, EDX)))
    f.emit(ir.Mov(ESI, EAX))
    if skip is not None:
        f.emit(ir.Label(skip))


def _finish_main(f: ir.IRFunction, data: DataBuilder) -> None:
    """Write the accumulator as hex to stdout; exit with a folded code."""
    f.emit(ir.Mov(EBX, ESI))
    f.emit(ir.Const(ECX, data.addr("hexbuf")))
    f.emit(ir.Call(EAX, "to_hex", (EBX, ECX)))
    call_const(f, "write_buf", data.addr("hexbuf"), 8)
    f.emit(ir.Mov(EAX, ESI))
    f.emit(ir.Mov(ECX, ESI))
    f.emit(ir.Shift("shr", ECX, 16))
    f.emit(ir.BinOp("xor", EAX, ECX))
    f.emit(ir.Const(ECX, 63))
    f.emit(ir.BinOp("and", EAX, ECX))
    f.emit(ir.Const(ECX, 1))
    f.emit(ir.BinOp("or", EAX, ECX))
    f.emit(ir.Ret())


def _antidebug_prelude(f: ir.IRFunction) -> None:
    """Refuse to run under a debugger (the paper's §IV-A scenario)."""
    f.emit(ir.Call(EAX, "ptrace_detect"))
    f.emit(ir.Branch("ne", EAX, 0, "nodbg"))
    f.emit(ir.Const(EAX, 99))
    f.emit(ir.Ret())
    f.emit(ir.Label("nodbg"))


def _common_functions() -> List[ir.IRFunction]:
    return [
        builders.to_hex(),
        builders.write_buf(),
        builders.ptrace_detect(),
    ]


# ----------------------------------------------------------------------
# wget — branchy transfer loop; digest has the branchiest (slowest) chain
# ----------------------------------------------------------------------

def build_wget(seed: int = 1001, blocks: int = 4, chunks: int = 150) -> Program:
    rodata = DataBuilder(RODATA_BASE)
    data = DataBuilder(DATA_BASE)
    header = b"HTTP/1.1 200 OK\r\nContent-Length: 2048\r\nServer: synth/1.0\r\n\r\n"
    content = input_bytes(seed, 2048)
    hdr_addr = rodata.add("header", header)
    content_addr = rodata.add("content", content)
    out_addr = data.reserve("outbuf", 2048)
    data.reserve("hexbuf", 16)
    stats = data.reserve("stats", 8)
    scratch = data.reserve("scratch", 512)

    main = ir.IRFunction("main", params=0)
    _antidebug_prelude(main)
    main.emit(ir.Const(ESI, 0xC0FFEE))
    main.emit(ir.Const(EDI, blocks))
    main.emit(ir.Label("request"))
    call_const(main, "hash_string", hdr_addr, len(header))
    _acc_xor_eax(main)
    call_const(main, "parse_uint", hdr_addr + 34, 4)
    main.emit(ir.BinOp("add", ESI, EAX))
    for _ in range(chunks):  # the transfer: copy + checksum each chunk
        call_const(main, "memcpy_words", out_addr, content_addr, 512)
        call_const(main, "checksum_words", out_addr, 512)
        _acc_xor_eax(main)
    _call_digest(main, "digest_wget", stats)
    _count_down_loop(main, "request")
    # cold second call sites (selection fan-in)
    call_const(main, "digest_wget", 0xDEAD, 7, stats)
    _acc_xor_eax(main)
    call_const(main, "crc_step", 0xBEEF, 3)
    _acc_xor_eax(main)
    call_const(main, "find_byte", hdr_addr, len(header), 0x0D)
    main.emit(ir.BinOp("add", ESI, EAX))
    _finish_main(main, data)

    functions = [
        main,
        builders.make_digest("digest_wget", rounds=32, branchy=True),
        builders.hash_string(),
        builders.parse_uint(),
        builders.memcpy_words(),
        builders.checksum_words(),
        builders.crc_step(),
        builders.rotate_xor(),
        builders.find_byte(),
        builders.strlen8(),
        builders.adler_words(),
        *_common_functions(),
    ]
    profile = MixProfile(
        branch=0.8, memory=0.6, wide_const=0.45, mul_shift=0.2, loop=0.4,
        call_density=0.25, functions=48,
    )
    functions += FunctionGenerator(profile, scratch, seed).generate("wget_fill")
    return Program(
        "wget", functions, rodata, data,
        options=CodegenOptions(wide_immediates=False),
        candidates=["digest_wget", "crc_step", "rotate_xor"],
    )


# ----------------------------------------------------------------------
# nginx — request routing; medium-branchy digest
# ----------------------------------------------------------------------

def build_nginx(seed: int = 2002, blocks: int = 12, requests: int = 40) -> Program:
    rodata = DataBuilder(RODATA_BASE)
    data = DataBuilder(DATA_BASE)
    request = b"GET /static/index.html HTTP/1.1\r\nHost: synth\r\n\r\n"
    req_addr = rodata.add("request", request)
    routes = b"".join(
        ((i * 0x9E3779B9) & 0xFFFFFFFF).to_bytes(4, "little") for i in range(16)
    )
    routes_addr = rodata.add("routes", routes)
    resp_addr = data.reserve("response", 1024)
    data.reserve("hexbuf", 16)
    stats = data.reserve("stats", 8)
    scratch = data.reserve("scratch", 512)

    main = ir.IRFunction("main", params=0)
    _antidebug_prelude(main)
    main.emit(ir.Const(ESI, 0x1CEB00DA))
    main.emit(ir.Const(EDI, blocks))
    main.emit(ir.Label("batch"))
    for _ in range(requests):
        call_const(main, "find_byte", req_addr, len(request), 0x20)
        main.emit(ir.BinOp("add", ESI, EAX))
        call_const(main, "hash_string", req_addr + 4, 18)
        _acc_xor_eax(main)
        # route = table_lookup(routes, hash & 15, 16)
        main.emit(ir.Mov(ECX, EAX))
        main.emit(ir.Const(EDX, 15))
        main.emit(ir.BinOp("and", ECX, EDX))
        main.emit(ir.Const(EBX, routes_addr))
        main.emit(ir.Const(EDX, 16))
        main.emit(ir.Call(EAX, "table_lookup", (EBX, ECX, EDX)))
        _acc_xor_eax(main)
        call_const(main, "memset_words", resp_addr, 0x20202020, 256)
        call_const(main, "adler_words", resp_addr, 256)
        main.emit(ir.BinOp("add", ESI, EAX))
    _call_digest(main, "digest_nginx", stats, every=8)
    _count_down_loop(main, "batch")
    call_const(main, "digest_nginx", 0x5157, 9, stats)
    _acc_xor_eax(main)
    call_const(main, "mix32", 0x12345678)
    main.emit(ir.BinOp("add", ESI, EAX))
    _finish_main(main, data)

    functions = [
        main,
        builders.make_digest("digest_nginx", rounds=12, branchy=True),
        builders.find_byte(),
        builders.hash_string(),
        builders.table_lookup(),
        builders.memset_words(),
        builders.adler_words(),
        builders.rotate_xor(),
        builders.mix32(),
        builders.token_kind(),
        builders.parse_uint(),
        *_common_functions(),
    ]
    profile = MixProfile(
        branch=0.95, memory=0.7, wide_const=0.5, mul_shift=0.2, loop=0.35,
        call_density=0.3, functions=72,
    )
    functions += FunctionGenerator(profile, scratch, seed).generate("ngx_fill")
    return Program(
        "nginx", functions, rodata, data,
        options=CodegenOptions(wide_immediates=False),
        candidates=["digest_nginx", "mix32", "table_lookup"],
    )


# ----------------------------------------------------------------------
# bzip2 — block compression; loop-heavy digest
# ----------------------------------------------------------------------

def build_bzip2(seed: int = 3003, blocks: int = 8, reps: int = 10) -> Program:
    rodata = DataBuilder(RODATA_BASE)
    data = DataBuilder(DATA_BASE)
    block = input_bytes(seed, 1024, alphabet=b"aaabbbcccddeeffg")
    block_addr = rodata.add("block", block)
    words = input_bytes(seed + 1, 256)
    words_addr = data.add("wordbuf", words)
    rle_addr = data.reserve("rlebuf", 4096)
    data.reserve("hexbuf", 16)
    stats = data.reserve("stats", 8)
    scratch = data.reserve("scratch", 512)

    main = ir.IRFunction("main", params=0)
    main.emit(ir.Const(ESI, 0xB21B2))
    main.emit(ir.Const(EDI, blocks))
    main.emit(ir.Label("blocks"))
    for _ in range(reps):
        call_const(main, "rle_encode", block_addr, 1024, rle_addr)
        main.emit(ir.BinOp("add", ESI, EAX))
        call_const(main, "sort_words", words_addr, 64)
        call_const(main, "checksum_words", words_addr, 64)
        _acc_xor_eax(main)
        call_const(main, "adler_words", words_addr, 64)
        main.emit(ir.BinOp("add", ESI, EAX))
    _call_digest(main, "digest_bzip2", stats, every=4)
    _count_down_loop(main, "blocks")
    call_const(main, "digest_bzip2", 0x1234, 99, stats)
    _acc_xor_eax(main)
    call_const(main, "checksum_words", words_addr, 8)
    _acc_xor_eax(main)
    _finish_main(main, data)

    functions = [
        main,
        builders.make_digest("digest_bzip2", rounds=12, branchy=True),
        builders.rle_encode(),
        builders.sort_words(),
        builders.checksum_words(),
        builders.crc_step(),
        builders.adler_words(),
        builders.memcpy_words(),
        builders.popcount(),
        *_common_functions(),
    ]
    profile = MixProfile(
        branch=0.6, memory=0.95, wide_const=0.35, mul_shift=0.3, loop=0.7,
        call_density=0.2, functions=34,
    )
    functions += FunctionGenerator(profile, scratch, seed).generate("bz_fill")
    return Program(
        "bzip2", functions, rodata, data,
        options=CodegenOptions(wide_immediates=False),
        candidates=["digest_bzip2", "crc_step", "checksum_words"],
    )


# ----------------------------------------------------------------------
# gzip — stream compression; medium digest
# ----------------------------------------------------------------------

def build_gzip(seed: int = 4004, blocks: int = 8, positions: int = 40) -> Program:
    rodata = DataBuilder(RODATA_BASE)
    data = DataBuilder(DATA_BASE)
    stream = input_bytes(seed, 2048, alphabet=b"abcabcababcdcdcd")
    stream_addr = rodata.add("stream", stream)
    data.reserve("window", 1024)
    data.reserve("hexbuf", 16)
    stats = data.reserve("stats", 8)
    scratch = data.reserve("scratch", 512)

    main = ir.IRFunction("main", params=0)
    main.emit(ir.Const(ESI, 0x6E1B))
    main.emit(ir.Const(EDI, blocks))
    main.emit(ir.Label("window"))
    for position in range(positions):
        call_const(
            main, "lz_match_len",
            stream_addr + 3 * (position % 600), stream_addr, 16,
        )
        main.emit(ir.BinOp("add", ESI, EAX))
    for _ in range(24):
        call_const(main, "adler_words", stream_addr, 512)
        _acc_xor_eax(main)
        call_const(main, "checksum_words", stream_addr, 512)
        _acc_xor_eax(main)
        call_const(main, "hash_string", stream_addr, 256)
        _acc_xor_eax(main)
    _call_digest(main, "digest_gzip", stats, every=4)
    _count_down_loop(main, "window")
    call_const(main, "digest_gzip", 0x6789, 2, stats)
    main.emit(ir.BinOp("add", ESI, EAX))
    _finish_main(main, data)

    functions = [
        main,
        builders.make_digest("digest_gzip", rounds=10, branchy=True),
        builders.lz_match_len(),
        builders.adler_words(),
        builders.checksum_words(),
        builders.rotate_xor(),
        builders.hash_string(),
        builders.crc_step(),
        builders.memcpy_words(),
        *_common_functions(),
    ]
    profile = MixProfile(
        branch=0.7, memory=0.85, wide_const=0.4, mul_shift=0.35, loop=0.6,
        call_density=0.2, functions=30,
    )
    functions += FunctionGenerator(profile, scratch, seed).generate("gz_fill")
    return Program(
        "gzip", functions, rodata, data,
        options=CodegenOptions(wide_immediates=False),
        candidates=["digest_gzip", "adler_words", "checksum_words"],
    )


# ----------------------------------------------------------------------
# gcc — compiler passes; straight-line digest (cheapest chain)
# ----------------------------------------------------------------------

def build_gcc(seed: int = 5005, blocks: int = 4, passes: int = 90) -> Program:
    rodata = DataBuilder(RODATA_BASE)
    data = DataBuilder(DATA_BASE)
    source = b"int foo42 = bar + 17 * baz; while (x < 100) x = x + qux(7);"
    src_addr = rodata.add("source", source)
    rpn = [5, 9, 1, 3, 3, 12, 2, 0x55, 4, 7, 1]
    rpn_words = b"".join(t.to_bytes(4, "little") for t in rpn)
    rpn_addr = rodata.add("rpn", rpn_words)
    symtab_addr = data.reserve("symtab", 64 * 8 + 8)  # +8: probe-budget slot
    stack_addr = data.reserve("evalstack", 256)
    data.reserve("hexbuf", 16)
    stats = data.reserve("stats", 8)
    scratch = data.reserve("scratch", 512)

    main = ir.IRFunction("main", params=0)
    main.emit(ir.Const(ESI, 0x6CC))
    main.emit(ir.Const(EDI, blocks))
    main.emit(ir.Label("unit"))
    for index in range(passes):
        # lex a character, hash a source span, exercise the symbol table
        call_const(main, "token_kind", 32 + (index * 7) % 90)
        main.emit(ir.BinOp("add", ESI, EAX))
        call_const(main, "hash_string", src_addr + (index % 30), 24)
        _acc_xor_eax(main)
        main.emit(ir.Mov(EBX, ESI))
        main.emit(ir.Const(ECX, 0xFFF))
        main.emit(ir.BinOp("and", EBX, ECX))
        main.emit(ir.Const(EDX, 1))
        main.emit(ir.BinOp("or", EBX, EDX))
        main.emit(ir.Mov(ECX, EBX))
        main.emit(ir.Mov(EDX, EDI))
        main.emit(ir.Const(EBX, symtab_addr))
        main.emit(ir.Call(EAX, "sym_insert", (EBX, ECX, EDX)))
        main.emit(ir.Const(EBX, symtab_addr))
        main.emit(ir.Call(EAX, "sym_find", (EBX, ECX)))
        main.emit(ir.BinOp("add", ESI, EAX))
        for _ in range(4):
            call_const(main, "rpn_eval", rpn_addr, len(rpn), stack_addr)
            _acc_xor_eax(main)
        call_const(main, "range_sum", 1, 400)
        main.emit(ir.BinOp("add", ESI, EAX))
    _call_digest(main, "digest_gcc", stats, every=4)
    _count_down_loop(main, "unit")
    call_const(main, "digest_gcc", 0xAA55AA55, 1, stats)
    _acc_xor_eax(main)
    call_const(main, "parse_uint", src_addr + 10, 2)
    main.emit(ir.BinOp("add", ESI, EAX))
    call_const(main, "abs32", 0x80001234)
    main.emit(ir.BinOp("add", ESI, EAX))
    _finish_main(main, data)

    functions = [
        main,
        builders.make_digest("digest_gcc", rounds=0, branchy=False, use_mul=True),
        builders.token_kind(),
        builders.hash_string(),
        builders.sym_insert(),
        builders.sym_find(),
        builders.rpn_eval(),
        builders.mix32(),
        builders.parse_uint(),
        builders.abs32(),
        builders.clip(),
        builders.range_sum(),
        builders.popcount(),
        builders.table_lookup(),
        *_common_functions(),
    ]
    profile = MixProfile(
        branch=1.2, memory=0.5, wide_const=0.7, mul_shift=0.25, loop=0.35,
        call_density=0.35, functions=130, size=(5, 12),
    )
    functions += FunctionGenerator(profile, scratch, seed).generate("gcc_fill")
    return Program(
        "gcc", functions, rodata, data,
        options=CodegenOptions(wide_immediates=True),
        candidates=["digest_gcc", "mix32", "abs32"],
    )


# ----------------------------------------------------------------------
# lame — fixed-point DSP; short digest (RC4 setup dominates, as in paper)
# ----------------------------------------------------------------------

def build_lame(seed: int = 6006, blocks: int = 8, frames: int = 48) -> Program:
    rodata = DataBuilder(RODATA_BASE)
    data = DataBuilder(DATA_BASE)
    samples = input_bytes(seed, 256 * 4)
    window = input_bytes(seed + 1, 256 * 4)
    samples_addr = data.add("samples", samples)
    window_addr = rodata.add("window", window)
    data.reserve("hexbuf", 16)
    stats = data.reserve("stats", 8)
    scratch = data.reserve("scratch", 512)

    main = ir.IRFunction("main", params=0)
    main.emit(ir.Const(ESI, 0x1A3E))
    main.emit(ir.Const(EDI, blocks))
    main.emit(ir.Label("frames"))
    for _ in range(frames):
        call_const(main, "dot_product", samples_addr, window_addr, 256)
        _acc_xor_eax(main)
        main.emit(ir.Mov(EBX, EAX))
        main.emit(ir.Const(ECX, 0x327))
        main.emit(ir.Const(EDX, 64))
        main.emit(ir.Call(EAX, "quantize", (EBX, ECX, EDX)))
        main.emit(ir.BinOp("add", ESI, EAX))
        main.emit(ir.Mov(EBX, ESI))
        main.emit(ir.Call(EAX, "bit_reverse", (EBX,)))
        _acc_xor_eax(main)
    _call_digest(main, "digest_lame", stats, every=8)
    _count_down_loop(main, "frames")
    call_const(main, "digest_lame", 0x4321, 8, stats)
    _acc_xor_eax(main)
    call_const(main, "abs32", 0x81234567)
    main.emit(ir.BinOp("add", ESI, EAX))
    call_const(main, "popcount", 0xF0F0A5A5)
    _acc_xor_eax(main)
    _finish_main(main, data)

    functions = [
        main,
        builders.make_digest("digest_lame", rounds=2, branchy=True, use_mul=True),
        builders.dot_product(),
        builders.quantize(),
        builders.bit_reverse(),
        builders.abs32(),
        builders.popcount(),
        builders.clip(),
        builders.memset_words(),
        *_common_functions(),
    ]
    profile = MixProfile(
        branch=0.3, memory=0.5, wide_const=0.18, mul_shift=1.3, loop=0.7,
        call_density=0.15, functions=42, size=(5, 11),
    )
    functions += FunctionGenerator(profile, scratch, seed).generate("lame_fill")
    return Program(
        "lame", functions, rodata, data,
        options=CodegenOptions(wide_immediates=False, xor_zero_idiom=True),
        candidates=["digest_lame", "quantize", "abs32"],
    )


BUILDERS: Dict[str, Callable[[], Program]] = {
    "wget": build_wget,
    "nginx": build_nginx,
    "bzip2": build_bzip2,
    "gzip": build_gzip,
    "gcc": build_gcc,
    "lame": build_lame,
}


def build_program(name: str) -> Program:
    """Build one corpus program by name."""
    return BUILDERS[name]()


def build_program_cached(name: str) -> Program:
    """Content-addressed :func:`build_program`.

    Corpus generation is pure code + fixed seeds, so the key is the
    package source digest plus the program name: editing any ``repro``
    source file invalidates the entry, and the corpus-determinism test
    suite guards the fixed-seed half of the assumption.  Hits
    deserialize a fresh :class:`Program` (blob-stored), so callers may
    mutate the result freely.
    """
    from ..cache import content_key, get_cache, package_source_digest

    cache = get_cache("corpus", store_blobs=True)
    if cache is None:
        return build_program(name)
    key = content_key("corpus", package_source_digest(), name)
    return cache.get_or_compute(key, lambda: build_program(name))


def build_all() -> Dict[str, Program]:
    """Build the full corpus (deterministic)."""
    return {name: build_program(name) for name in PROGRAM_NAMES}
