"""Library of IR functions used to assemble corpus programs.

These are the "application code" of our six synthetic test programs —
checksums, string scanning, compression loops, table lookups, parsing,
fixed-point DSP.  Functions marked *leaf + word-oriented* are eligible
verification-code candidates (chain-translatable).

Register discipline (matches the native ABI): eax/ecx/edx are
caller-clobbered, ebx/esi/edi are callee-saved, so values that must
survive a Call live in ebx/esi/edi.
"""

from __future__ import annotations

from ..ropc import ir
from ..x86.registers import EAX, EBX, ECX, EDX, EDI, ESI


def mix32() -> ir.IRFunction:
    """xorshift32 scrambling step — tiny, diverse, leaf."""
    f = ir.IRFunction("mix32", params=1)
    f.emit(ir.Param(EAX, 0))
    f.emit(ir.Mov(ECX, EAX))
    f.emit(ir.Shift("shl", ECX, 13))
    f.emit(ir.BinOp("xor", EAX, ECX))
    f.emit(ir.Mov(ECX, EAX))
    f.emit(ir.Shift("shr", ECX, 17))
    f.emit(ir.BinOp("xor", EAX, ECX))
    f.emit(ir.Mov(ECX, EAX))
    f.emit(ir.Shift("shl", ECX, 5))
    f.emit(ir.BinOp("xor", EAX, ECX))
    f.emit(ir.Ret())
    return f


def checksum_words() -> ir.IRFunction:
    """checksum_words(buf, nwords): rotating xor/add over words.

    The flagship verification candidate: leaf, word-only loads, loop,
    shifts, adds — maximal gadget-type coverage (§VII-B step 3).
    """
    f = ir.IRFunction("checksum_words", params=2)
    f.emit(ir.Param(ESI, 0))          # buf
    f.emit(ir.Param(ECX, 1))          # nwords
    f.emit(ir.Const(EAX, 0x811C9DC5))  # acc
    f.emit(ir.Label("loop"))
    f.emit(ir.Branch("eq", ECX, 0, "done"))
    f.emit(ir.Load(EDX, ESI, 0))
    f.emit(ir.BinOp("xor", EAX, EDX))
    f.emit(ir.Mov(EDX, EAX))
    f.emit(ir.Shift("shl", EDX, 7))
    f.emit(ir.BinOp("add", EAX, EDX))
    f.emit(ir.Const(EDX, 4))
    f.emit(ir.BinOp("add", ESI, EDX))
    f.emit(ir.Const(EDX, 1))
    f.emit(ir.BinOp("sub", ECX, EDX))
    f.emit(ir.Jump("loop"))
    f.emit(ir.Label("done"))
    f.emit(ir.Ret())
    return f


def adler_words() -> ir.IRFunction:
    """adler_words(buf, nwords): Adler-style dual-accumulator checksum."""
    f = ir.IRFunction("adler_words", params=2)
    f.emit(ir.Param(ESI, 0))
    f.emit(ir.Param(ECX, 1))
    f.emit(ir.Const(EAX, 1))          # a
    f.emit(ir.Const(EBX, 0))          # b
    f.emit(ir.Label("loop"))
    f.emit(ir.Branch("eq", ECX, 0, "done"))
    f.emit(ir.Load(EDX, ESI, 0))
    f.emit(ir.BinOp("add", EAX, EDX))
    f.emit(ir.BinOp("add", EBX, EAX))
    f.emit(ir.Const(EDX, 4))
    f.emit(ir.BinOp("add", ESI, EDX))
    f.emit(ir.Const(EDX, 1))
    f.emit(ir.BinOp("sub", ECX, EDX))
    f.emit(ir.Jump("loop"))
    f.emit(ir.Label("done"))
    f.emit(ir.Shift("shl", EBX, 16))
    f.emit(ir.BinOp("or", EAX, EBX))
    f.emit(ir.Ret())
    return f


def crc_step() -> ir.IRFunction:
    """crc_step(crc, word): 8 rounds of shift-and-conditional-xor."""
    f = ir.IRFunction("crc_step", params=2)
    f.emit(ir.Param(EAX, 0))          # crc
    f.emit(ir.Param(EBX, 1))          # word
    f.emit(ir.BinOp("xor", EAX, EBX))
    f.emit(ir.Const(ECX, 8))
    f.emit(ir.Label("round"))
    f.emit(ir.Mov(EDX, EAX))
    f.emit(ir.Const(EBX, 1))
    f.emit(ir.BinOp("and", EDX, EBX))
    f.emit(ir.Shift("shr", EAX, 1))
    f.emit(ir.Branch("eq", EDX, 0, "skip"))
    f.emit(ir.Const(EDX, 0xEDB88320))
    f.emit(ir.BinOp("xor", EAX, EDX))
    f.emit(ir.Label("skip"))
    f.emit(ir.Const(EDX, 1))
    f.emit(ir.BinOp("sub", ECX, EDX))
    f.emit(ir.Branch("ne", ECX, 0, "round"))
    f.emit(ir.Ret())
    return f


def memcpy_words() -> ir.IRFunction:
    """memcpy_words(dst, src, nwords)."""
    f = ir.IRFunction("memcpy_words", params=3)
    f.emit(ir.Param(EDI, 0))
    f.emit(ir.Param(ESI, 1))
    f.emit(ir.Param(ECX, 2))
    f.emit(ir.Label("loop"))
    f.emit(ir.Branch("eq", ECX, 0, "done"))
    f.emit(ir.Load(EAX, ESI, 0))
    f.emit(ir.Store(EDI, EAX, 0))
    f.emit(ir.Const(EDX, 4))
    f.emit(ir.BinOp("add", ESI, EDX))
    f.emit(ir.BinOp("add", EDI, EDX))
    f.emit(ir.Const(EDX, 1))
    f.emit(ir.BinOp("sub", ECX, EDX))
    f.emit(ir.Jump("loop"))
    f.emit(ir.Label("done"))
    f.emit(ir.Const(EAX, 0))
    f.emit(ir.Ret())
    return f


def memset_words() -> ir.IRFunction:
    """memset_words(dst, value, nwords)."""
    f = ir.IRFunction("memset_words", params=3)
    f.emit(ir.Param(EDI, 0))
    f.emit(ir.Param(EAX, 1))
    f.emit(ir.Param(ECX, 2))
    f.emit(ir.Label("loop"))
    f.emit(ir.Branch("eq", ECX, 0, "done"))
    f.emit(ir.Store(EDI, EAX, 0))
    f.emit(ir.Const(EDX, 4))
    f.emit(ir.BinOp("add", EDI, EDX))
    f.emit(ir.Const(EDX, 1))
    f.emit(ir.BinOp("sub", ECX, EDX))
    f.emit(ir.Jump("loop"))
    f.emit(ir.Label("done"))
    f.emit(ir.Const(EAX, 0))
    f.emit(ir.Ret())
    return f


def strlen8() -> ir.IRFunction:
    """strlen8(ptr): length of a NUL-terminated byte string."""
    f = ir.IRFunction("strlen8", params=1)
    f.emit(ir.Param(ESI, 0))
    f.emit(ir.Const(EAX, 0))
    f.emit(ir.Label("loop"))
    f.emit(ir.Load8(ECX, ESI, 0))
    f.emit(ir.Branch("eq", ECX, 0, "done"))
    f.emit(ir.Const(EDX, 1))
    f.emit(ir.BinOp("add", EAX, EDX))
    f.emit(ir.BinOp("add", ESI, EDX))
    f.emit(ir.Jump("loop"))
    f.emit(ir.Label("done"))
    f.emit(ir.Ret())
    return f


def find_byte() -> ir.IRFunction:
    """find_byte(ptr, n, needle): index of first match, else -1."""
    f = ir.IRFunction("find_byte", params=3)
    f.emit(ir.Param(ESI, 0))
    f.emit(ir.Param(ECX, 1))
    f.emit(ir.Param(EBX, 2))
    f.emit(ir.Const(EAX, 0))
    f.emit(ir.Label("loop"))
    f.emit(ir.Branch("uge", EAX, ECX, "missing"))
    f.emit(ir.Load8(EDX, ESI, 0))
    f.emit(ir.Branch("eq", EDX, EBX, "done"))
    f.emit(ir.Const(EDX, 1))
    f.emit(ir.BinOp("add", EAX, EDX))
    f.emit(ir.BinOp("add", ESI, EDX))
    f.emit(ir.Jump("loop"))
    f.emit(ir.Label("missing"))
    f.emit(ir.Const(EAX, 0xFFFFFFFF))
    f.emit(ir.Label("done"))
    f.emit(ir.Ret())
    return f


def hash_string() -> ir.IRFunction:
    """hash_string(ptr, n): djb2-flavoured byte hash."""
    f = ir.IRFunction("hash_string", params=2)
    f.emit(ir.Param(ESI, 0))
    f.emit(ir.Param(ECX, 1))
    f.emit(ir.Const(EAX, 5381))
    f.emit(ir.Label("loop"))
    f.emit(ir.Branch("eq", ECX, 0, "done"))
    f.emit(ir.Mov(EDX, EAX))
    f.emit(ir.Shift("shl", EDX, 5))
    f.emit(ir.BinOp("add", EAX, EDX))
    f.emit(ir.Load8(EDX, ESI, 0))
    f.emit(ir.BinOp("xor", EAX, EDX))
    f.emit(ir.Const(EDX, 1))
    f.emit(ir.BinOp("add", ESI, EDX))
    f.emit(ir.BinOp("sub", ECX, EDX))
    f.emit(ir.Jump("loop"))
    f.emit(ir.Label("done"))
    f.emit(ir.Ret())
    return f


def table_lookup() -> ir.IRFunction:
    """table_lookup(table, index, size): bounds-checked word fetch."""
    f = ir.IRFunction("table_lookup", params=3)
    f.emit(ir.Param(ESI, 0))
    f.emit(ir.Param(ECX, 1))
    f.emit(ir.Param(EDX, 2))
    f.emit(ir.Branch("uge", ECX, EDX, "oob"))
    f.emit(ir.Mov(EAX, ECX))
    f.emit(ir.Shift("shl", EAX, 2))
    f.emit(ir.BinOp("add", ESI, EAX))
    f.emit(ir.Load(EAX, ESI, 0))
    f.emit(ir.Ret())
    f.emit(ir.Label("oob"))
    f.emit(ir.Const(EAX, 0))
    f.emit(ir.Ret())
    return f


def dot_product() -> ir.IRFunction:
    """dot_product(a, b, n): multiply-accumulate over word arrays."""
    f = ir.IRFunction("dot_product", params=3)
    f.emit(ir.Param(ESI, 0))
    f.emit(ir.Param(EDI, 1))
    f.emit(ir.Param(ECX, 2))
    f.emit(ir.Const(EAX, 0))
    f.emit(ir.Label("loop"))
    f.emit(ir.Branch("eq", ECX, 0, "done"))
    f.emit(ir.Load(EDX, ESI, 0))
    f.emit(ir.Load(EBX, EDI, 0))
    f.emit(ir.BinOp("mul", EDX, EBX))
    f.emit(ir.BinOp("add", EAX, EDX))
    f.emit(ir.Const(EDX, 4))
    f.emit(ir.BinOp("add", ESI, EDX))
    f.emit(ir.BinOp("add", EDI, EDX))
    f.emit(ir.Const(EDX, 1))
    f.emit(ir.BinOp("sub", ECX, EDX))
    f.emit(ir.Jump("loop"))
    f.emit(ir.Label("done"))
    f.emit(ir.Ret())
    return f


def quantize() -> ir.IRFunction:
    """quantize(x, scale, shift_bias): fixed-point scale + clip to 16 bit."""
    f = ir.IRFunction("quantize", params=3)
    f.emit(ir.Param(EAX, 0))
    f.emit(ir.Param(ECX, 1))
    f.emit(ir.Param(EDX, 2))
    f.emit(ir.BinOp("mul", EAX, ECX))
    f.emit(ir.Shift("sar", EAX, 10))
    f.emit(ir.BinOp("add", EAX, EDX))
    f.emit(ir.Const(ECX, 32767))
    f.emit(ir.Branch("le", EAX, ECX, "no_hi"))
    f.emit(ir.Mov(EAX, ECX))
    f.emit(ir.Label("no_hi"))
    f.emit(ir.Const(ECX, 0xFFFF8000))  # -32768
    f.emit(ir.Branch("ge", EAX, ECX, "no_lo"))
    f.emit(ir.Mov(EAX, ECX))
    f.emit(ir.Label("no_lo"))
    f.emit(ir.Ret())
    return f


def clip() -> ir.IRFunction:
    """clip(x, lo, hi): clamp signed."""
    f = ir.IRFunction("clip", params=3)
    f.emit(ir.Param(EAX, 0))
    f.emit(ir.Param(ECX, 1))
    f.emit(ir.Param(EDX, 2))
    f.emit(ir.Branch("ge", EAX, ECX, "not_low"))
    f.emit(ir.Mov(EAX, ECX))
    f.emit(ir.Label("not_low"))
    f.emit(ir.Branch("le", EAX, EDX, "done"))
    f.emit(ir.Mov(EAX, EDX))
    f.emit(ir.Label("done"))
    f.emit(ir.Ret())
    return f


def abs32() -> ir.IRFunction:
    """abs32(x) via the branch-free sar/xor/sub idiom."""
    f = ir.IRFunction("abs32", params=1)
    f.emit(ir.Param(EAX, 0))
    f.emit(ir.Mov(ECX, EAX))
    f.emit(ir.Shift("sar", ECX, 31))
    f.emit(ir.BinOp("xor", EAX, ECX))
    f.emit(ir.BinOp("sub", EAX, ECX))
    f.emit(ir.Ret())
    return f


def popcount() -> ir.IRFunction:
    """popcount(x): bit-count loop."""
    f = ir.IRFunction("popcount", params=1)
    f.emit(ir.Param(ECX, 0))
    f.emit(ir.Const(EAX, 0))
    f.emit(ir.Label("loop"))
    f.emit(ir.Branch("eq", ECX, 0, "done"))
    f.emit(ir.Mov(EDX, ECX))
    f.emit(ir.Const(EBX, 1))
    f.emit(ir.BinOp("and", EDX, EBX))
    f.emit(ir.BinOp("add", EAX, EDX))
    f.emit(ir.Shift("shr", ECX, 1))
    f.emit(ir.Jump("loop"))
    f.emit(ir.Label("done"))
    f.emit(ir.Ret())
    return f


def bit_reverse() -> ir.IRFunction:
    """bit_reverse(x): 32-bit bit reversal loop."""
    f = ir.IRFunction("bit_reverse", params=1)
    f.emit(ir.Param(ECX, 0))
    f.emit(ir.Const(EAX, 0))
    f.emit(ir.Const(EBX, 32))
    f.emit(ir.Label("loop"))
    f.emit(ir.Shift("shl", EAX, 1))
    f.emit(ir.Mov(EDX, ECX))
    f.emit(ir.Const(ESI, 1))
    f.emit(ir.BinOp("and", EDX, ESI))
    f.emit(ir.BinOp("or", EAX, EDX))
    f.emit(ir.Shift("shr", ECX, 1))
    f.emit(ir.Const(EDX, 1))
    f.emit(ir.BinOp("sub", EBX, EDX))
    f.emit(ir.Branch("ne", EBX, 0, "loop"))
    f.emit(ir.Ret())
    return f


def parse_uint() -> ir.IRFunction:
    """parse_uint(ptr, n): decimal digits to integer."""
    f = ir.IRFunction("parse_uint", params=2)
    f.emit(ir.Param(ESI, 0))
    f.emit(ir.Param(ECX, 1))
    f.emit(ir.Const(EAX, 0))
    f.emit(ir.Label("loop"))
    f.emit(ir.Branch("eq", ECX, 0, "done"))
    f.emit(ir.Load8(EDX, ESI, 0))
    f.emit(ir.Const(EBX, 48))          # '0'
    f.emit(ir.BinOp("sub", EDX, EBX))
    f.emit(ir.Branch("uge", EDX, 10, "done"))
    f.emit(ir.Const(EBX, 10))
    f.emit(ir.BinOp("mul", EAX, EBX))
    f.emit(ir.BinOp("add", EAX, EDX))
    f.emit(ir.Const(EDX, 1))
    f.emit(ir.BinOp("add", ESI, EDX))
    f.emit(ir.BinOp("sub", ECX, EDX))
    f.emit(ir.Jump("loop"))
    f.emit(ir.Label("done"))
    f.emit(ir.Ret())
    return f


def to_hex() -> ir.IRFunction:
    """to_hex(value, dst): write 8 ascii hex digits."""
    f = ir.IRFunction("to_hex", params=2)
    f.emit(ir.Param(EBX, 0))
    f.emit(ir.Param(EDI, 1))
    f.emit(ir.Const(ESI, 8))
    f.emit(ir.Label("loop"))
    f.emit(ir.Mov(EAX, EBX))
    f.emit(ir.Shift("shr", EAX, 28))
    f.emit(ir.Const(ECX, 10))
    f.emit(ir.Branch("uge", EAX, ECX, "alpha"))
    f.emit(ir.Const(ECX, 48))           # '0'
    f.emit(ir.BinOp("add", EAX, ECX))
    f.emit(ir.Jump("emit"))
    f.emit(ir.Label("alpha"))
    f.emit(ir.Const(ECX, 87))           # 'a' - 10
    f.emit(ir.BinOp("add", EAX, ECX))
    f.emit(ir.Label("emit"))
    f.emit(ir.Store8(EDI, EAX, 0))
    f.emit(ir.Const(ECX, 1))
    f.emit(ir.BinOp("add", EDI, ECX))
    f.emit(ir.Shift("shl", EBX, 4))
    f.emit(ir.BinOp("sub", ESI, ECX))
    f.emit(ir.Branch("ne", ESI, 0, "loop"))
    f.emit(ir.Const(EAX, 8))
    f.emit(ir.Ret())
    return f


def rle_encode() -> ir.IRFunction:
    """rle_encode(src, n, dst): byte run-length encoding.

    Emits (count, byte) pairs; returns the address one past the last
    output byte (callers derive the length from it).
    """
    f = ir.IRFunction("rle_encode", params=3)
    f.emit(ir.Param(ESI, 0))            # src
    f.emit(ir.Param(ECX, 1))            # remaining
    f.emit(ir.Param(EDI, 2))            # dst
    f.emit(ir.Label("outer"))
    f.emit(ir.Branch("eq", ECX, 0, "done"))
    f.emit(ir.Load8(EBX, ESI, 0))       # run byte
    f.emit(ir.Const(EDX, 0))            # run length
    f.emit(ir.Label("run"))
    f.emit(ir.Branch("eq", ECX, 0, "flush"))
    f.emit(ir.Branch("uge", EDX, 255, "flush"))
    f.emit(ir.Load8(EAX, ESI, 0))
    f.emit(ir.Branch("ne", EAX, EBX, "flush"))
    f.emit(ir.Const(EAX, 1))
    f.emit(ir.BinOp("add", EDX, EAX))
    f.emit(ir.BinOp("add", ESI, EAX))
    f.emit(ir.BinOp("sub", ECX, EAX))
    f.emit(ir.Jump("run"))
    f.emit(ir.Label("flush"))
    f.emit(ir.Store8(EDI, EDX, 0))
    f.emit(ir.Store8(EDI, EBX, 1))
    f.emit(ir.Const(EAX, 2))
    f.emit(ir.BinOp("add", EDI, EAX))
    f.emit(ir.Jump("outer"))
    f.emit(ir.Label("done"))
    f.emit(ir.Mov(EAX, EDI))
    f.emit(ir.Ret())
    return f


def sort_words() -> ir.IRFunction:
    """sort_words(buf, n): insertion sort of 32-bit words (signed)."""
    f = ir.IRFunction("sort_words", params=2)
    f.emit(ir.Param(EDI, 0))            # buf
    f.emit(ir.Param(EBX, 1))            # n
    f.emit(ir.Const(ESI, 1))            # i
    f.emit(ir.Label("outer"))
    f.emit(ir.Branch("uge", ESI, EBX, "done"))
    f.emit(ir.Mov(ECX, ESI))            # j = i
    f.emit(ir.Label("inner"))
    f.emit(ir.Branch("eq", ECX, 0, "next"))
    # edx = &buf[j]
    f.emit(ir.Mov(EDX, ECX))
    f.emit(ir.Shift("shl", EDX, 2))
    f.emit(ir.BinOp("add", EDX, EDI))
    f.emit(ir.Load(EAX, EDX, 0))        # buf[j]
    # compare buf[j-1] > buf[j]?
    f.emit(ir.Load(ECX, EDX, -4))       # clobbers j! reload below
    f.emit(ir.Branch("le", ECX, EAX, "restore_next"))
    # swap
    f.emit(ir.Store(EDX, ECX, 0))
    f.emit(ir.Load(ECX, EDX, -4))
    f.emit(ir.Store(EDX, EAX, -4))
    # j = (edx - edi)/4 - 1
    f.emit(ir.Mov(ECX, EDX))
    f.emit(ir.BinOp("sub", ECX, EDI))
    f.emit(ir.Shift("shr", ECX, 2))
    f.emit(ir.Const(EDX, 1))
    f.emit(ir.BinOp("sub", ECX, EDX))
    f.emit(ir.Jump("inner"))
    f.emit(ir.Label("restore_next"))
    f.emit(ir.Label("next"))
    f.emit(ir.Const(EDX, 1))
    f.emit(ir.BinOp("add", ESI, EDX))
    f.emit(ir.Jump("outer"))
    f.emit(ir.Label("done"))
    f.emit(ir.Const(EAX, 0))
    f.emit(ir.Ret())
    return f


def ptrace_detect() -> ir.IRFunction:
    """The paper's running example (§IV-A): detect a debugger via ptrace.

    Returns 1 when no debugger is attached, 0 when one is.  The syscall
    return value is *non-deterministic* from the program's view — this
    is exactly the code oblivious hashing cannot protect and Parallax
    can (the function is leaf and chain-translatable, syscall included).
    """
    f = ir.IRFunction("ptrace_detect", params=0)
    f.emit(ir.Const(EAX, 26))           # SYS_PTRACE
    f.emit(ir.Const(EBX, 0))            # PTRACE_TRACEME
    f.emit(ir.Const(ECX, 0))
    f.emit(ir.Const(EDX, 0))
    f.emit(ir.Syscall())
    f.emit(ir.Branch("lt", EAX, 0, "traced"))
    f.emit(ir.Const(EAX, 1))
    f.emit(ir.Ret())
    f.emit(ir.Label("traced"))
    f.emit(ir.Const(EAX, 0))
    f.emit(ir.Ret())
    return f


def write_buf() -> ir.IRFunction:
    """write_buf(ptr, n): write bytes to stdout via the toy OS."""
    f = ir.IRFunction("write_buf", params=2)
    f.emit(ir.Param(ECX, 0))
    f.emit(ir.Param(EDX, 1))
    f.emit(ir.Const(EAX, 4))            # SYS_WRITE
    f.emit(ir.Const(EBX, 1))            # stdout
    f.emit(ir.Syscall())
    f.emit(ir.Ret())
    return f


def lz_match_len() -> ir.IRFunction:
    """lz_match_len(a, b, maxlen): length of common byte prefix."""
    f = ir.IRFunction("lz_match_len", params=3)
    f.emit(ir.Param(ESI, 0))
    f.emit(ir.Param(EDI, 1))
    f.emit(ir.Param(ECX, 2))
    f.emit(ir.Const(EAX, 0))
    f.emit(ir.Label("loop"))
    f.emit(ir.Branch("uge", EAX, ECX, "done"))
    f.emit(ir.Load8(EDX, ESI, 0))
    f.emit(ir.Load8(EBX, EDI, 0))
    f.emit(ir.Branch("ne", EDX, EBX, "done"))
    f.emit(ir.Const(EDX, 1))
    f.emit(ir.BinOp("add", EAX, EDX))
    f.emit(ir.BinOp("add", ESI, EDX))
    f.emit(ir.BinOp("add", EDI, EDX))
    f.emit(ir.Jump("loop"))
    f.emit(ir.Label("done"))
    f.emit(ir.Ret())
    return f


def range_sum() -> ir.IRFunction:
    """range_sum(lo, hi): sum of integers in [lo, hi] — pure word math."""
    f = ir.IRFunction("range_sum", params=2)
    f.emit(ir.Param(ECX, 0))
    f.emit(ir.Param(EBX, 1))
    f.emit(ir.Const(EAX, 0))
    f.emit(ir.Label("loop"))
    f.emit(ir.Branch("gt", ECX, EBX, "done"))
    f.emit(ir.BinOp("add", EAX, ECX))
    f.emit(ir.Const(EDX, 1))
    f.emit(ir.BinOp("add", ECX, EDX))
    f.emit(ir.Jump("loop"))
    f.emit(ir.Label("done"))
    f.emit(ir.Ret())
    return f


def rotate_xor() -> ir.IRFunction:
    """rotate_xor(x, k): rotate-left by k then xor golden ratio.

    Small leaf; nice secondary verification candidate (shift-heavy).
    """
    f = ir.IRFunction("rotate_xor", params=2)
    f.emit(ir.Param(EAX, 0))
    f.emit(ir.Param(ECX, 1))
    # rol via (x << 13) | (x >> 19): k fixed at 13 (const-amount shifts)
    f.emit(ir.Mov(EDX, EAX))
    f.emit(ir.Shift("shl", EAX, 13))
    f.emit(ir.Shift("shr", EDX, 19))
    f.emit(ir.BinOp("or", EAX, EDX))
    f.emit(ir.BinOp("add", EAX, ECX))
    f.emit(ir.Const(EDX, 0x9E3779B9))
    f.emit(ir.BinOp("xor", EAX, EDX))
    f.emit(ir.Ret())
    return f


def token_kind() -> ir.IRFunction:
    """token_kind(ch): classify an ascii byte (gcc-ish lexer helper).

    0=space 1=digit 2=alpha 3=punct 4=other — a dense jcc ladder, i.e.
    plenty of jump-rule material.
    """
    f = ir.IRFunction("token_kind", params=1)
    f.emit(ir.Param(ECX, 0))
    f.emit(ir.Branch("eq", ECX, 32, "space"))
    f.emit(ir.Branch("eq", ECX, 9, "space"))
    f.emit(ir.Branch("eq", ECX, 10, "space"))
    f.emit(ir.Branch("lt", ECX, 48, "punct_or_other"))
    f.emit(ir.Branch("le", ECX, 57, "digit"))
    f.emit(ir.Branch("lt", ECX, 65, "punct"))
    f.emit(ir.Branch("le", ECX, 90, "alpha"))
    f.emit(ir.Branch("lt", ECX, 97, "punct"))
    f.emit(ir.Branch("le", ECX, 122, "alpha"))
    f.emit(ir.Jump("other"))
    f.emit(ir.Label("punct_or_other"))
    f.emit(ir.Branch("lt", ECX, 33, "other"))
    f.emit(ir.Label("punct"))
    f.emit(ir.Const(EAX, 3))
    f.emit(ir.Ret())
    f.emit(ir.Label("space"))
    f.emit(ir.Const(EAX, 0))
    f.emit(ir.Ret())
    f.emit(ir.Label("digit"))
    f.emit(ir.Const(EAX, 1))
    f.emit(ir.Ret())
    f.emit(ir.Label("alpha"))
    f.emit(ir.Const(EAX, 2))
    f.emit(ir.Ret())
    f.emit(ir.Label("other"))
    f.emit(ir.Const(EAX, 4))
    f.emit(ir.Ret())
    return f


def sym_insert() -> ir.IRFunction:
    """sym_insert(table, key, value): linear-probe insert into a hash
    table of (key, value) word pairs; 64 slots; returns slot index."""
    f = ir.IRFunction("sym_insert", params=3)
    f.emit(ir.Param(ESI, 0))            # table
    f.emit(ir.Param(EBX, 1))            # key
    f.emit(ir.Param(EDI, 2))            # value
    f.emit(ir.Mov(EAX, EBX))
    f.emit(ir.Const(ECX, 63))
    f.emit(ir.BinOp("and", EAX, ECX))   # slot = key & 63
    f.emit(ir.Const(EDX, 64))
    f.emit(ir.Store(ESI, EDX, 512))     # probe budget (slot past table)
    f.emit(ir.Label("probe"))
    # edx = &table[slot*8]
    f.emit(ir.Mov(EDX, EAX))
    f.emit(ir.Shift("shl", EDX, 3))
    f.emit(ir.BinOp("add", EDX, ESI))
    f.emit(ir.Load(ECX, EDX, 0))        # existing key
    f.emit(ir.Branch("eq", ECX, 0, "store"))
    f.emit(ir.Branch("eq", ECX, EBX, "store"))
    # budget -= 1; on exhaustion evict the current slot (table is full)
    f.emit(ir.Load(ECX, ESI, 512))
    f.emit(ir.AddConst(ECX, 0xFFFFFFFF))   # -1 without a scratch register
    f.emit(ir.Store(ESI, ECX, 512))
    f.emit(ir.Branch("eq", ECX, 0, "store"))
    f.emit(ir.Const(ECX, 1))
    f.emit(ir.BinOp("add", EAX, ECX))
    f.emit(ir.Const(ECX, 63))
    f.emit(ir.BinOp("and", EAX, ECX))
    f.emit(ir.Jump("probe"))
    f.emit(ir.Label("store"))
    f.emit(ir.Store(EDX, EBX, 0))
    f.emit(ir.Store(EDX, EDI, 4))
    f.emit(ir.Ret())
    return f


def sym_find() -> ir.IRFunction:
    """sym_find(table, key): value for key, or 0 when absent/empty."""
    f = ir.IRFunction("sym_find", params=2)
    f.emit(ir.Param(ESI, 0))
    f.emit(ir.Param(EBX, 1))
    f.emit(ir.Mov(EAX, EBX))
    f.emit(ir.Const(ECX, 63))
    f.emit(ir.BinOp("and", EAX, ECX))
    f.emit(ir.Const(EDI, 64))           # probe budget
    f.emit(ir.Label("probe"))
    f.emit(ir.Mov(EDX, EAX))
    f.emit(ir.Shift("shl", EDX, 3))
    f.emit(ir.BinOp("add", EDX, ESI))
    f.emit(ir.Load(ECX, EDX, 0))
    f.emit(ir.Branch("eq", ECX, EBX, "hit"))
    f.emit(ir.Branch("eq", ECX, 0, "miss"))
    f.emit(ir.Const(ECX, 1))
    f.emit(ir.BinOp("add", EAX, ECX))
    f.emit(ir.Const(ECX, 63))
    f.emit(ir.BinOp("and", EAX, ECX))
    f.emit(ir.Const(ECX, 1))
    f.emit(ir.BinOp("sub", EDI, ECX))
    f.emit(ir.Branch("ne", EDI, 0, "probe"))
    f.emit(ir.Label("miss"))
    f.emit(ir.Const(EAX, 0))
    f.emit(ir.Ret())
    f.emit(ir.Label("hit"))
    f.emit(ir.Load(EAX, EDX, 4))
    f.emit(ir.Ret())
    return f


def rpn_eval() -> ir.IRFunction:
    """rpn_eval(tokens, n, stack): evaluate RPN over word tokens.

    Token encoding: 1=add 2=sub 3=mul 4=xor, values are (x << 3) | 7.
    A compact expression interpreter — the most operation-diverse
    function in the gcc-like program.
    """
    f = ir.IRFunction("rpn_eval", params=3)
    f.emit(ir.Param(ESI, 0))            # tokens
    f.emit(ir.Param(EBX, 1))            # n
    f.emit(ir.Param(EDI, 2))            # eval stack base (grows up)
    f.emit(ir.Label("loop"))
    f.emit(ir.Branch("eq", EBX, 0, "done"))
    f.emit(ir.Load(EAX, ESI, 0))        # token
    f.emit(ir.Mov(ECX, EAX))
    f.emit(ir.Const(EDX, 7))
    f.emit(ir.BinOp("and", ECX, EDX))
    f.emit(ir.Branch("eq", ECX, 7, "push_value"))
    # binary operator: pop two
    f.emit(ir.Const(EDX, 8))
    f.emit(ir.BinOp("sub", EDI, EDX))
    f.emit(ir.Load(ECX, EDI, 0))        # lhs
    f.emit(ir.Load(EDX, EDI, 4))        # rhs
    f.emit(ir.Branch("eq", EAX, 1, "op_add"))
    f.emit(ir.Branch("eq", EAX, 2, "op_sub"))
    f.emit(ir.Branch("eq", EAX, 3, "op_mul"))
    f.emit(ir.BinOp("xor", ECX, EDX))
    f.emit(ir.Jump("op_done"))
    f.emit(ir.Label("op_add"))
    f.emit(ir.BinOp("add", ECX, EDX))
    f.emit(ir.Jump("op_done"))
    f.emit(ir.Label("op_sub"))
    f.emit(ir.BinOp("sub", ECX, EDX))
    f.emit(ir.Jump("op_done"))
    f.emit(ir.Label("op_mul"))
    f.emit(ir.BinOp("mul", ECX, EDX))
    f.emit(ir.Label("op_done"))
    f.emit(ir.Store(EDI, ECX, 0))
    f.emit(ir.Const(EDX, 4))
    f.emit(ir.BinOp("add", EDI, EDX))
    f.emit(ir.Jump("next"))
    f.emit(ir.Label("push_value"))
    f.emit(ir.Shift("shr", EAX, 3))
    f.emit(ir.Store(EDI, EAX, 0))
    f.emit(ir.Const(EDX, 4))
    f.emit(ir.BinOp("add", EDI, EDX))
    f.emit(ir.Label("next"))
    f.emit(ir.Const(EDX, 4))
    f.emit(ir.BinOp("add", ESI, EDX))
    f.emit(ir.Const(EDX, 1))
    f.emit(ir.BinOp("sub", EBX, EDX))
    f.emit(ir.Jump("loop"))
    f.emit(ir.Label("done"))
    f.emit(ir.Load(EAX, EDI, -4))       # top of stack
    f.emit(ir.Ret())
    return f


def make_digest(
    name: str,
    rounds: int = 16,
    branchy: bool = True,
    use_mul: bool = False,
) -> ir.IRFunction:
    """digest(x, seed, cell): operation-rich accumulator functions.

    Every corpus program has one: a statistics/fingerprint helper,
    called once per processing block, cheap relative to the block's
    work, and deliberately rich in operation types — exactly what the
    §VII-B selection algorithm looks for in verification code.  The
    ``rounds``/``branchy`` knobs shape the resulting chain's cost: a
    branchy loop translates into many stack-pivot sequences (wget-like,
    high Fig. 5a slowdown) while a straight-line digest stays cheap
    (gcc-like).

    ``cell`` points at a writable word used as a running cross-call
    accumulator (gives the chain genuine load/store gadget coverage).
    """
    f = ir.IRFunction(name, params=3)
    f.emit(ir.Param(EAX, 0))            # x
    f.emit(ir.Param(EBX, 1))            # seed
    f.emit(ir.Param(ESI, 2))            # stats cell
    f.emit(ir.Load(EDX, ESI, 0))
    f.emit(ir.BinOp("xor", EAX, EDX))
    if rounds:
        f.emit(ir.Const(ECX, rounds))
        f.emit(ir.Label("round"))
        if branchy:
            f.emit(ir.Mov(EDX, EAX))
            f.emit(ir.BinOp("and", EDX, ECX))
            f.emit(ir.Branch("eq", EDX, 0, "even"))
            f.emit(ir.BinOp("xor", EAX, EBX))
            f.emit(ir.Shift("shr", EAX, 1))
            f.emit(ir.Const(EDX, 0x82F63B78))
            f.emit(ir.BinOp("xor", EAX, EDX))
            f.emit(ir.Jump("next"))
            f.emit(ir.Label("even"))
            f.emit(ir.Shift("shr", EAX, 1))
            f.emit(ir.Mov(EDX, EBX))
            f.emit(ir.BinOp("or", EAX, EDX))
            f.emit(ir.Label("next"))
        else:
            f.emit(ir.Shift("shl", EAX, 1))
            f.emit(ir.BinOp("xor", EAX, EBX))
        if use_mul:
            f.emit(ir.Const(EDX, 0x01000193))
            f.emit(ir.BinOp("mul", EAX, EDX))
        f.emit(ir.BinOp("add", EBX, EAX))
        f.emit(ir.Const(EDX, 1))
        f.emit(ir.BinOp("sub", ECX, EDX))
        f.emit(ir.Branch("ne", ECX, 0, "round"))
    # straight-line tail: widen the op-kind inventory
    f.emit(ir.Mov(EDX, EAX))
    f.emit(ir.Shift("sar", EDX, 7))
    f.emit(ir.BinOp("sub", EAX, EDX))
    f.emit(ir.Not(EDX))
    f.emit(ir.BinOp("and", EDX, EBX))
    f.emit(ir.BinOp("or", EAX, EDX))
    f.emit(ir.Neg(EDX))
    f.emit(ir.BinOp("add", EAX, EDX))
    f.emit(ir.Mov(EDX, EAX))
    f.emit(ir.Shift("shl", EDX, 3))
    f.emit(ir.BinOp("xor", EAX, EDX))
    if use_mul and not rounds:
        f.emit(ir.Const(EDX, 0x01000193))
        f.emit(ir.BinOp("mul", EAX, EDX))
    f.emit(ir.Store(ESI, EAX, 0))       # update the stats cell
    f.emit(ir.Ret())
    return f
