"""IR interpreter vs Python reference semantics for the builder library."""

import pytest

from repro.corpus import builders
from repro.ropc.interpreter import Interpreter, InterpreterError, IRMemory


def run(function, args, mem=None, functions=None, syscall=None):
    interp = Interpreter(functions or {}, mem or IRMemory(), syscall_handler=syscall)
    return interp.run(function, args)


def test_mix32_matches_xorshift():
    from repro.crypto import xorshift32
    f = builders.mix32()
    for x in (1, 0xDEADBEEF, 12345):
        assert run(f, [x]) == xorshift32(x)


def test_checksum_words():
    mem = IRMemory()
    words = [10, 20, 30, 40]
    for i, w in enumerate(words):
        mem.write32(0x1000 + 4 * i, w)
    acc = 0x811C9DC5
    for w in words:
        acc ^= w
        acc = (acc + ((acc << 7) & 0xFFFFFFFF)) & 0xFFFFFFFF
    assert run(builders.checksum_words(), [0x1000, 4], mem) == acc


def test_strlen8_and_find_byte():
    mem = IRMemory()
    mem.load_blob(0x2000, b"hello\x00")
    assert run(builders.strlen8(), [0x2000], mem) == 5
    assert run(builders.find_byte(), [0x2000, 6, ord("l")], mem) == 2
    assert run(builders.find_byte(), [0x2000, 6, ord("z")], mem) == 0xFFFFFFFF


def test_parse_uint():
    mem = IRMemory()
    mem.load_blob(0x100, b"2048x")
    assert run(builders.parse_uint(), [0x100, 5], mem) == 2048


def test_sort_words_sorts_signed():
    mem = IRMemory()
    values = [5, -3 & 0xFFFFFFFF, 100, 0, -50 & 0xFFFFFFFF, 7]
    for i, v in enumerate(values):
        mem.write32(0x3000 + 4 * i, v)
    run(builders.sort_words(), [0x3000, len(values)], mem)
    out = [mem.read32(0x3000 + 4 * i) for i in range(len(values))]
    signed = [v - (1 << 32) if v >= 1 << 31 else v for v in out]
    assert signed == sorted(signed)


def test_rle_encode_roundtrip_structure():
    mem = IRMemory()
    mem.load_blob(0x4000, b"aaabbc")
    end = run(builders.rle_encode(), [0x4000, 6, 0x5000], mem)
    out = mem.read_blob(0x5000, end - 0x5000)
    assert out == bytes([3, ord("a"), 2, ord("b"), 1, ord("c")])


def test_quantize_clips():
    f = builders.quantize()
    assert run(f, [1 << 20, 1024, 0]) == 32767          # clipped high
    big_negative = (-(1 << 20)) & 0xFFFFFFFF
    assert run(f, [big_negative, 1024, 0]) == 0xFFFF8000  # clipped low


def test_abs32():
    f = builders.abs32()
    assert run(f, [5]) == 5
    assert run(f, [(-5) & 0xFFFFFFFF]) == 5


def test_popcount_and_bit_reverse():
    assert run(builders.popcount(), [0xF0F0]) == 8
    assert run(builders.bit_reverse(), [0x80000000]) == 1
    assert run(builders.bit_reverse(), [1]) == 0x80000000


def test_token_kind_classes():
    f = builders.token_kind()
    assert run(f, [ord(" ")]) == 0
    assert run(f, [ord("7")]) == 1
    assert run(f, [ord("a")]) == 2
    assert run(f, [ord("Z")]) == 2
    assert run(f, [ord("+")]) == 3
    assert run(f, [5]) == 4


def test_sym_table_insert_find():
    mem = IRMemory()
    functions = {"sym_insert": builders.sym_insert(), "sym_find": builders.sym_find()}
    interp = Interpreter(functions, mem)
    interp.run(functions["sym_insert"], [0x6000, 0x1234, 99])
    interp.run(functions["sym_insert"], [0x6000, 0x1234 + 64, 77])  # collision
    assert interp.run(functions["sym_find"], [0x6000, 0x1234]) == 99
    assert interp.run(functions["sym_find"], [0x6000, 0x1234 + 64]) == 77
    assert interp.run(functions["sym_find"], [0x6000, 0x9999]) == 0


def test_rpn_eval():
    mem = IRMemory()
    # (5 9 +) (3 *) = 42 ; tokens: values are (x<<3)|7
    tokens = [(5 << 3) | 7, (9 << 3) | 7, 1, (3 << 3) | 7, 3]
    for i, t in enumerate(tokens):
        mem.write32(0x7000 + 4 * i, t)
    assert run(builders.rpn_eval(), [0x7000, len(tokens), 0x7800], mem) == 42


def test_ptrace_detect_depends_on_debugger():
    f = builders.ptrace_detect()
    def make_handler(traced):
        def handler(regs, mem):
            assert regs["eax"] == 26
            return 0xFFFFFFFF if traced else 0
        return handler
    assert run(f, [], syscall=make_handler(False)) == 1
    assert run(f, [], syscall=make_handler(True)) == 0


def test_infinite_loop_guard():
    from repro.ropc import ir
    from repro.x86 import EAX
    f = ir.IRFunction("spin", 0)
    f.emit(ir.Label("x"))
    f.emit(ir.Jump("x"))
    f.emit(ir.Ret())
    with pytest.raises(InterpreterError):
        Interpreter(max_ops=1000).run(f, [])
