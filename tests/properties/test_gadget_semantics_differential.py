"""Differential test: the classifier's claimed semantics must match
what the emulator actually does when the gadget executes.

For every compiler-usable kind, emit the gadget, run it in a minimal
ROP context with randomized register state, and check the architectural
effect equals the kind's meaning.  This is the property the whole
verification scheme rests on: a chain built from classified gadgets
computes what the IR said.
"""

from hypothesis import given, settings, strategies as st

from repro.binary import BinaryImage, Perm, Section
from repro.emu import Emulator
from repro.gadgets import GadgetKind, GadgetOp
from repro.ropc import emit_standard_gadgets
from repro.x86 import EAX, EBX, ECX, EDX, ESI

GADGETS = 0x8060000
CHAIN = 0x8091000
DATA = 0x8093000
HALT = 0x8070000

regs = st.sampled_from((EAX, EBX, ECX, EDX, ESI))
words = st.integers(0, 0xFFFFFFFF)


def run_gadget(kind, reg_state, stack_words=(), mem=None):
    """Execute [gadget] with the given registers; return the emulator."""
    code, gadgets = emit_standard_gadgets([kind], base=GADGETS)
    image = BinaryImage("t")
    image.add_section(Section(".gadgets", GADGETS, code, Perm.RX))
    image.add_section(Section(".halt", HALT, b"\xf4", Perm.RX))
    image.add_section(Section(".data", DATA, bytes(0x1000), Perm.RW))
    chain = b"".join(
        w.to_bytes(4, "little")
        for w in (gadgets[0].address, *stack_words, HALT)
    )
    image.add_section(Section(".ropchains", CHAIN, chain, Perm.RW))
    emulator = Emulator(image, max_steps=100)
    for reg, value in reg_state.items():
        emulator.cpu.set(reg, value)
    if mem:
        for addr, value in mem.items():
            emulator.memory.write_u32(addr, value)
    # enter the chain as a ret would: eip = first word, esp past it
    emulator.cpu.eip = int.from_bytes(chain[:4], "little")
    emulator.cpu.esp = CHAIN + 4
    try:
        while True:
            emulator.step()
    except Exception:
        pass
    return emulator


@settings(max_examples=25, deadline=None)
@given(regs, words, words)
def test_load_const(dst, value, junk):
    emu = run_gadget(
        GadgetKind(GadgetOp.LOAD_CONST, dst=dst), {dst: junk}, (value,)
    )
    assert emu.cpu.get(dst) == value


@settings(max_examples=25, deadline=None)
@given(regs, regs, words, words)
def test_mov_reg(dst, src, a, b):
    if dst is src:
        return
    emu = run_gadget(GadgetKind(GadgetOp.MOV_REG, dst=dst, src=src), {dst: a, src: b})
    assert emu.cpu.get(dst) == b


@settings(max_examples=40, deadline=None)
@given(
    regs, regs, words, words,
    st.sampled_from(["add", "sub", "and", "or", "xor", "imul"]),
)
def test_binop(dst, src, a, b, op):
    if dst is src:
        return
    emu = run_gadget(
        GadgetKind(GadgetOp.BINOP, dst=dst, src=src, subop=op), {dst: a, src: b}
    )
    expected = {
        "add": (a + b),
        "sub": (a - b),
        "and": a & b,
        "or": a | b,
        "xor": a ^ b,
        "imul": a * b,
    }[op] & 0xFFFFFFFF
    assert emu.cpu.get(dst) == expected


@settings(max_examples=25, deadline=None)
@given(regs, words, st.integers(0, 255))
def test_load_and_store_mem(reg, value, disp):
    other = EBX if reg is not EBX else ECX
    kind = GadgetKind(GadgetOp.STORE_MEM, dst=reg, src=other, disp=disp)
    emu = run_gadget(kind, {reg: DATA + 256, other: value})
    assert emu.memory.read_u32(DATA + 256 + disp) == value

    kind = GadgetKind(GadgetOp.LOAD_MEM, dst=other, src=reg, disp=disp)
    emu = run_gadget(kind, {reg: DATA + 256}, mem={DATA + 256 + disp: value})
    assert emu.cpu.get(other) == value


@settings(max_examples=25, deadline=None)
@given(regs, words, st.sampled_from(["shl", "shr", "sar"]), st.integers(1, 31))
def test_shift(reg, value, op, amount):
    emu = run_gadget(GadgetKind(GadgetOp.SHIFT, dst=reg, subop=op, amount=amount), {reg: value})
    if op == "shl":
        expected = (value << amount) & 0xFFFFFFFF
    elif op == "shr":
        expected = value >> amount
    else:
        signed = value - (1 << 32) if value >= 1 << 31 else value
        expected = (signed >> amount) & 0xFFFFFFFF
    assert emu.cpu.get(reg) == expected


@settings(max_examples=15, deadline=None)
@given(regs, words)
def test_neg_not_inc_dec(reg, value):
    for op, fn in (
        (GadgetOp.NEG, lambda v: -v),
        (GadgetOp.NOT, lambda v: ~v),
        (GadgetOp.INC, lambda v: v + 1),
        (GadgetOp.DEC, lambda v: v - 1),
    ):
        emu = run_gadget(GadgetKind(op, dst=reg), {reg: value})
        assert emu.cpu.get(reg) == fn(value) & 0xFFFFFFFF
