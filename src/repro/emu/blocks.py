"""Block-compiled execution engine: predecoded, specialized superblocks.

The step engine pays per instruction for a decode-cache probe, a
mnemonic dispatch and a chain of ``isinstance`` checks over operands.
This module removes all three: straight-line instruction runs are
compiled **once** into a Python function (generated source, ``exec``'d)
in which every operand access is specialized at compile time — register
numbers become list indexes, immediates become literals, effective
addresses become inline arithmetic, and scalar loads/stores go straight
to the flat-segment buffer (:class:`repro.emu.memory.FlatSegment`)
without a method call.  Instruction shapes outside the specializer's
templates fall back to the shared semantic handlers in
:mod:`repro.emu.dispatch`, pre-bound per instruction, so both engines
execute identical semantics by construction.

Superblocks extend through *non-taken* conditional branches (side
exits) and terminate at any other control transfer.  Step and cycle
accounting is batched: the totals are added once per block, and every
early exit (taken jcc, fault, syscall, self-modifying write) charges
the exact prefix the step engine would have charged, so ``RunResult``s
are byte-identical between engines.

Coherence model (what keys a block):

* **Entry check** — a block records the write-counter version of each
  page its bytes span.  ``Memory`` bumps those counters on data writes,
  on Wurster code-view patches (:meth:`~repro.emu.memory.Memory.
  patch_code_view`) and on their removal, so tampering — through either
  the data or the instruction view — invalidates affected superblocks
  before their next execution.
* **In-block check** — a store that lands inside the block's own byte
  range aborts the block *after* the store, exactly where the step
  engine would first re-decode modified bytes.  Generic (non-inlined)
  stores compare page versions instead, which is conservative but never
  wrong.
* Blocks whose bytes live on unversioned pages (the stack) are executed
  but never cached.
"""

from __future__ import annotations

from typing import Optional

from ..telemetry.recorder import get_recorder
from ..x86.instruction import CONDITIONAL_JUMPS, CONTROL_FLOW
from ..x86.operands import Imm, Mem, Rel
from ..x86.registers import Register
from .cpu import MASK32
from .dispatch import DISPATCH, RAS_DEPTH, RET_MISPREDICT_PENALTY, cost_of
from .errors import BadFetch, BadMemoryAccess, EmulationError
from .memory import _U16, _U32

#: Upper bounds per superblock; 2048 bytes <= half a page, so a block
#: spans at most two pages and validity is two dict probes.
MAX_BLOCK_INSNS = 64
MAX_BLOCK_BYTES = 2048

#: Per-generation bound of the block cache (two generations resident).
BLOCK_CACHE_GENERATION = 4096

#: Mnemonics that always terminate a superblock.  Conditional jumps
#: become side exits instead; anything unknown also terminates (its
#: fault must be the last thing the block does).
_TERMINATORS = CONTROL_FLOW - CONDITIONAL_JUMPS

#: Condition-code suffix -> inline Python expression over ``cpu``.
#: Mirrors :meth:`repro.emu.cpu.CPUState.condition` exactly (including
#: the unmodelled parity flag).
_CC_EXPR = {
    "o": "cpu.of", "no": "not cpu.of",
    "b": "cpu.cf", "ae": "not cpu.cf",
    "e": "cpu.zf", "ne": "not cpu.zf",
    "be": "(cpu.cf or cpu.zf)", "a": "not (cpu.cf or cpu.zf)",
    "s": "cpu.sf", "ns": "not cpu.sf",
    "p": "False", "np": "True",
    "l": "cpu.sf != cpu.of", "ge": "cpu.sf == cpu.of",
    "le": "(cpu.zf or cpu.sf != cpu.of)",
    "g": "(not cpu.zf and cpu.sf == cpu.of)",
}

_LOGIC_OPS = {"and": "&", "or": "|", "xor": "^"}

#: Shared globals for every generated block function.
_SHARED_NS = {
    "M": MASK32,
    "BME": BadMemoryAccess,
    "RMP": RET_MISPREDICT_PENALTY,
    "RASD": RAS_DEPTH,
    "_U32U": _U32.unpack_from,
    "_U32P": _U32.pack_into,
    "_U16U": _U16.unpack_from,
}


def _unimplemented(emu, insn):
    raise EmulationError(
        f"unimplemented mnemonic {insn.mnemonic!r}", eip=emu.cpu.eip
    )


def _is_r32(op) -> bool:
    return isinstance(op, Register) and op.width == 32


def _is_m32(op) -> bool:
    return (
        isinstance(op, Mem)
        and op.width == 32
        and (op.base is None or op.base.width == 32)
        and (op.index is None or op.index.width == 32)
    )


def _mem_regs_ok(op: Mem) -> bool:
    return (op.base is None or op.base.width == 32) and (
        op.index is None or op.index.width == 32
    )


def _imm32(op) -> int:
    """The value :meth:`Emulator._read_operand` yields for ``op`` at 32 bits."""
    if op.width < 32:
        return op.signed & MASK32
    return op.value


def _ea_expr(op: Mem) -> str:
    """Inline effective-address expression (masked), or a constant."""
    parts = []
    if op.base is not None:
        parts.append(f"regs[{op.base.code}]")
    if op.index is not None:
        scale = f" * {op.scale}" if op.scale != 1 else ""
        parts.append(f"regs[{op.index.code}]{scale}")
    if not parts:
        return str(op.disp & MASK32)
    expr = " + ".join(parts)
    if op.disp:
        expr = f"{expr} + {op.disp}"
    return f"({expr}) & M"


def _reg_read_expr(op: Register) -> Optional[str]:
    """Inline expression for reading a register of any width."""
    if op.width == 32:
        return f"regs[{op.code}]"
    if op.width == 16:
        return f"(regs[{op.code}] & 0xFFFF)"
    if op.code < 4:  # al/cl/dl/bl
        return f"(regs[{op.code}] & 0xFF)"
    return f"((regs[{op.code - 4}] >> 8) & 0xFF)"  # ah/ch/dh/bh


class CompiledBlock:
    """One compiled superblock and its validity stamp."""

    __slots__ = (
        "start", "end", "n", "fn", "p0", "v0", "p1", "v1", "cacheable", "epoch",
        "mnems",
    )

    def __init__(self, start, end, n, fn, pages, cacheable, epoch, mnems=()):
        self.start = start
        self.end = end
        self.n = n
        self.fn = fn
        #: mnemonic tuple, kept for hot-spot attribution (executions of
        #: this block expand to one sample per mnemonic at report time).
        self.mnems = mnems
        (self.p0, self.v0) = pages[0]
        (self.p1, self.v1) = pages[1] if len(pages) > 1 else (-1, 0)
        self.cacheable = cacheable
        #: memory.write_epoch at stamp time; equality proves validity
        #: without per-page probes (refreshed on successful re-check).
        self.epoch = epoch

    def __repr__(self) -> str:
        return f"<CompiledBlock {self.start:#x}..{self.end:#x} n={self.n}>"


class BlockEngine:
    """Superblock cache + execution loop bound to one :class:`Emulator`."""

    def __init__(self, emulator):
        self.emulator = emulator
        self._cache = {}
        self._old = {}
        # telemetry (recorded at run end by the emulator).  ``hits`` is
        # the total; ``epoch_hits`` is the tier-1 subset validated by the
        # global write-epoch compare alone, ``page_revalidations`` the
        # tier-2 subset that needed the per-page version probes.
        self.compiled = 0
        self.hits = 0
        self.epoch_hits = 0
        self.page_revalidations = 0
        self.invalidated = 0
        self.write_aborts = 0

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, stop: Optional[int] = None) -> None:
        """Execute until ``ExitProgram``/fault, or until eip == ``stop``.

        Exceptions propagate with step/cycle accounting already exact,
        so the caller handles them exactly as it would the step engine's.
        """
        emu = self.emulator
        cpu = emu.cpu
        mem = emu.memory
        vget = mem._versions.get
        max_steps = emu.max_steps
        cache = self._cache
        old = self._old
        rec = get_recorder()
        hot = emu.hotspots
        hits = 0
        epoch_hits = 0
        page_revals = 0
        try:
            while True:
                eip = cpu.eip
                if eip == stop:
                    return
                b = cache.get(eip)
                if b is None and old:
                    b = old.get(eip)
                    if b is not None:  # promote the survivor
                        cache[eip] = b
                if b is not None:
                    epoch = mem.write_epoch
                    if b.epoch != epoch:
                        if b.v0 != vget(b.p0, 0) or (
                            b.p1 >= 0 and b.v1 != vget(b.p1, 0)
                        ):
                            self.invalidated += 1
                            if rec.enabled:
                                rec.record(
                                    "block_invalidate",
                                    tier="page",
                                    start=b.start,
                                    end=b.end,
                                )
                            b = None
                        else:
                            b.epoch = epoch
                            hits += 1
                            page_revals += 1
                    else:
                        hits += 1
                        epoch_hits += 1
                if b is None:
                    b = self._compile(eip)
                    self.compiled += 1
                    if b.cacheable:
                        if len(cache) >= BLOCK_CACHE_GENERATION:
                            self._old = old = cache
                            self._cache = cache = {}
                        cache[eip] = b
                if emu.steps + b.n > max_steps:
                    # Near the budget: single-step so StepLimitExceeded
                    # fires on exactly the same instruction as the step
                    # engine.
                    emu.step()
                    continue
                watch = emu.tamper_watch
                if (
                    watch is not None
                    and watch.hit_cycles is None
                    and watch.overlaps(b.start, b.end)
                ):
                    # An unhit TamperWatch overlaps this block: single-
                    # step so the stamp comes from Emulator.step's
                    # accounting, identical to the step engine.
                    emu.step()
                    continue
                if hot is not None:
                    hot.record_block(b)
                if b.fn(emu, cpu, mem):
                    self.write_aborts += 1
                    if rec.enabled:
                        rec.record(
                            "block_invalidate",
                            tier="store",
                            start=b.start,
                            end=b.end,
                        )
        finally:
            self.hits += hits
            self.epoch_hits += epoch_hits
            self.page_revalidations += page_revals

    def run_steps(self, n: int) -> None:
        """Execute exactly ``n`` instructions (attack drivers, tests).

        Blocks that would overshoot the target are replaced by single
        steps, so the emulator lands on precisely the same instruction
        boundary as ``n`` calls to :meth:`Emulator.step`.
        """
        emu = self.emulator
        cpu = emu.cpu
        mem = emu.memory
        rec = get_recorder()
        hot = emu.hotspots
        target = emu.steps + n
        while emu.steps < target:
            b = self._lookup(cpu.eip)
            watch = emu.tamper_watch
            if (
                b is None
                or emu.steps + b.n > min(target, emu.max_steps)
                or (
                    watch is not None
                    and watch.hit_cycles is None
                    and watch.overlaps(b.start, b.end)
                )
            ):
                emu.step()
                continue
            self.hits += 1
            if hot is not None:
                hot.record_block(b)
            if b.fn(emu, cpu, mem):
                self.write_aborts += 1
                if rec.enabled:
                    rec.record(
                        "block_invalidate", tier="store", start=b.start, end=b.end
                    )

    def _lookup(self, eip: int):
        """Valid cached block for ``eip``, compiling (and caching) on miss."""
        cache = self._cache
        b = cache.get(eip)
        if b is None and self._old:
            b = self._old.get(eip)
            if b is not None:
                cache[eip] = b
        if b is not None:
            mem = self.emulator.memory
            if b.epoch != mem.write_epoch:
                vget = mem._versions.get
                if b.v0 != vget(b.p0, 0) or (
                    b.p1 >= 0 and b.v1 != vget(b.p1, 0)
                ):
                    self.invalidated += 1
                    rec = get_recorder()
                    if rec.enabled:
                        rec.record(
                            "block_invalidate",
                            tier="page",
                            start=b.start,
                            end=b.end,
                        )
                    b = None
                else:
                    b.epoch = mem.write_epoch
                    self.page_revalidations += 1
            else:
                self.epoch_hits += 1
        if b is None:
            b = self._compile(eip)
            self.compiled += 1
            if b.cacheable:
                if len(cache) >= BLOCK_CACHE_GENERATION:
                    self._old = cache
                    self._cache = cache = {}
                cache[eip] = b
        return b

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------

    def _decode_block(self, start: int):
        """Decode the superblock at ``start``; returns ``(insns, end)``.

        This is the block-shape policy shared with the trace engine
        (:mod:`repro.emu.traces`), which links these superblocks across
        their exits.  ``BadFetch`` on the *first* instruction propagates,
        exactly as the step engine faults before counting the step.
        """
        emu = self.emulator
        insns = [emu._fetch_decode(start)]
        addr = start + insns[0].length
        while (
            insns[-1].mnemonic not in _TERMINATORS
            and insns[-1].mnemonic in DISPATCH
            and len(insns) < MAX_BLOCK_INSNS
        ):
            last = insns[-1]
            if last.mnemonic in CONDITIONAL_JUMPS and not (
                isinstance(last.operands[0], Rel)
                and last.operands[0].target is not None
            ):
                break  # can't side-exit a jcc we can't specialize
            try:
                insn = emu._fetch_decode(addr)
            except BadFetch:
                break  # the *next* block will raise at execution time
            if addr + insn.length - start > MAX_BLOCK_BYTES:
                break
            insns.append(insn)
            addr += insn.length
        return insns, addr

    def _compile(self, start: int) -> CompiledBlock:
        emu = self.emulator
        insns, end = self._decode_block(start)

        mem = emu.memory
        first_page = start >> 12
        last_page = (end - 1) >> 12
        pages = [(first_page, mem._versions.get(first_page, 0))]
        if last_page != first_page:
            pages.append((last_page, mem._versions.get(last_page, 0)))
        cacheable = all(mem.page_is_versioned(p << 12) for p, _ in pages)

        fn = self._generate(start, end, insns)
        rec = get_recorder()
        if rec.enabled:
            rec.record(
                "block_compile",
                start=start,
                end=end,
                n=len(insns),
                cacheable=cacheable,
            )
        return CompiledBlock(
            start, end, len(insns), fn, pages, cacheable, mem.write_epoch,
            mnems=tuple(insn.mnemonic for insn in insns),
        )

    def _generate(self, start: int, end: int, insns):
        """Emit, compile and exec the block's specialized source."""
        nexts = []
        cum = []
        total = 0
        a = start
        for insn in insns:
            a += insn.length
            nexts.append(a)
            total += cost_of(insn)
            cum.append(total)

        handlers = []
        body = []
        n = len(insns)
        for i, insn in enumerate(insns):
            handlers.append(DISPATCH.get(insn.mnemonic, _unimplemented))
            body.append(f"# {nexts[i] - insn.length:#x}: {insn.text()}")
            self._emit_insn(
                body, i, insn,
                nxt=nexts[i], cum=cum[i],
                start=start, end=end,
                final=(i == n - 1),
            )

        mem = self.emulator.memory
        pages = sorted({start >> 12, (end - 1) >> 12})
        version_checks = " or ".join(
            f"_VG({p}, 0) != {mem._versions.get(p, 0)}" for p in pages
        )
        # substitute the placeholder used by generic write-checks
        body = [line.replace("__VERSION_CHECK__", version_checks) for line in body]

        name = f"_block_{start:x}"
        lines = [
            f"def {name}(emu, cpu, mem):",
            "    regs = cpu.regs",
            "    try:",
        ]
        lines.extend("        " + line for line in body)
        lines.extend([
            "    except BaseException:",
            "        _eip = cpu.eip",
            "        if _eip in _NS:",  # false only for async interrupts
            "            _i = _NEXTS.index(_eip)",
            "            emu.steps += _i + 1",
            "            emu.cycles += _CUM[_i]",
            "        raise",
            f"    emu.steps += {n}",
            f"    emu.cycles += {total}",
        ])
        source = "\n".join(lines)
        namespace = dict(_SHARED_NS)
        namespace.update(
            _I=tuple(insns),
            _H=tuple(handlers),
            _NEXTS=tuple(nexts),
            _NS=frozenset(nexts),
            _CUM=tuple(cum),
            # Per-emulator bindings: the engine is bound to one Memory,
            # whose segment table and version dict are never reassigned.
            _SG=mem._seg_by_page.get,
            _VS=mem._versions,
            _VG=mem._versions.get,
        )
        exec(compile(source, f"<block {start:#x}>", "exec"), namespace)
        return namespace[name]

    # -- inline memory templates ---------------------------------------
    #
    # These replicate Memory.read_u32/write_u32 (flat-segment fast path
    # plus paged fallback) without the method call.  The fallback call
    # keeps its own fast/slow counters, so telemetry stays accurate.

    @staticmethod
    def _load32(body, addr_var, dest):
        body.append(f"_g = _SG({addr_var} >> 12)")
        body.append(
            f"if _g is not None and (_o := {addr_var} - _g.base) <= _g.limit:"
        )
        body.append("    mem.fast_loads += 1")
        body.append(f"    {dest} = _U32U(_g.data, _o)[0]")
        body.append("else:")
        body.append(f"    {dest} = mem.read_u32({addr_var})")

    @staticmethod
    def _store32(body, addr_var, value_expr):
        body.append(f"_g = _SG({addr_var} >> 12)")
        body.append(
            f"if _g is not None and (_o := {addr_var} - _g.base) <= _g.limit:"
        )
        body.append("    mem.fast_stores += 1")
        body.append(f"    _U32P(_g.data, _o, {value_expr})")
        body.append("    if _g.versioned:")
        body.append("        mem.write_epoch += 1")
        body.append(f"        _n = {addr_var} >> 12")
        body.append("        _VS[_n] = _VG(_n, 0) + 1")
        body.append(f"        if ({addr_var} + 3) >> 12 != _n:")
        body.append("            _VS[_n + 1] = _VG(_n + 1, 0) + 1")
        body.append("else:")
        body.append(f"    mem.write_u32({addr_var}, {value_expr})")

    # -- per-instruction emission --------------------------------------

    def _emit_insn(self, body, i, insn, nxt, cum, start, end, final):
        m = insn.mnemonic
        if self._try_specialize(body, i, insn, nxt, cum, start, end, final):
            return
        # Generic fallback: pre-bound shared handler.
        body.append(f"cpu.eip = {nxt}")
        body.append(f"_H[{i}](emu, _I[{i}])")
        if insn.writes_memory() and not final:
            body.append("if __VERSION_CHECK__:")
            body.append(f"    emu.steps += {i + 1}")
            body.append(f"    emu.cycles += {cum}")
            body.append("    return 1")

    def _try_specialize(self, body, i, insn, nxt, cum, start, end, final) -> bool:
        m = insn.mnemonic
        ops = insn.operands

        def set_eip_if_final():
            if final:
                body.append(f"cpu.eip = {nxt}")

        def guarded_load(mem_op, dest):
            """Faulting load with the step engine's BME eip wrap."""
            body.append(f"cpu.eip = {nxt}")
            body.append(f"_a = {_ea_expr(mem_op)}")
            body.append("try:")
            sub = []
            if mem_op.width == 32:
                self._load32(sub, "_a", dest)
            elif mem_op.width == 8:
                sub.append("_g = _SG(_a >> 12)")
                sub.append("if _g is not None:")
                sub.append("    mem.fast_loads += 1")
                sub.append(f"    {dest} = _g.data[_a - _g.base]")
                sub.append("else:")
                sub.append(f"    {dest} = mem.read_u8(_a)")
            else:  # 16
                sub.append("_g = _SG(_a >> 12)")
                sub.append("if _g is not None and (_o := _a - _g.base) <= _g.limit:")
                sub.append("    mem.fast_loads += 1")
                sub.append(f"    {dest} = _U16U(_g.data, _o)[0]")
                sub.append("else:")
                sub.append(f"    {dest} = mem.read_u16(_a)")
            body.extend("    " + line for line in sub)
            body.append("except BME as exc:")
            body.append(f"    raise BME(str(exc), eip={nxt}) from exc")

        def guarded_store32(mem_op, value_expr):
            """Faulting dword store + self-modifying-range abort check."""
            body.append(f"cpu.eip = {nxt}")
            body.append(f"_a = {_ea_expr(mem_op)}")
            body.append("try:")
            sub = []
            self._store32(sub, "_a", value_expr)
            body.extend("    " + line for line in sub)
            body.append("except BME as exc:")
            body.append(f"    raise BME(str(exc), eip={nxt}) from exc")
            # Self-modifying store into this block's own bytes: stop
            # after the store, exactly where re-decode would begin.
            body.append(f"if _a < {end} and _a + 4 > {start}:")
            body.append(f"    emu.steps += {i + 1}")
            body.append(f"    emu.cycles += {cum}")
            body.append("    return 1")

        def alu_src_expr(op) -> Optional[str]:
            if _is_r32(op):
                return f"regs[{op.code}]"
            if isinstance(op, Imm):
                return str(_imm32(op))
            return None

        # ---- data movement ------------------------------------------
        if m == "mov":
            dst, src = ops
            if _is_r32(dst):
                if _is_r32(src):
                    body.append(f"regs[{dst.code}] = regs[{src.code}]")
                    set_eip_if_final()
                    return True
                if isinstance(src, Imm):
                    body.append(f"regs[{dst.code}] = {_imm32(src)}")
                    set_eip_if_final()
                    return True
                if _is_m32(src):
                    guarded_load(src, f"regs[{dst.code}]")
                    return True
                return False
            if _is_m32(dst):
                if _is_r32(src):
                    guarded_store32(dst, f"regs[{src.code}]")
                    return True
                if isinstance(src, Imm):
                    guarded_store32(dst, str(_imm32(src)))
                    return True
            return False

        if m in ("movzx", "movsx") and _is_r32(ops[0]):
            src = ops[1]
            if isinstance(src, Register) and src.width in (8, 16):
                value = _reg_read_expr(src)
                if m == "movzx":
                    body.append(f"regs[{ops[0].code}] = {value}")
                else:
                    sign = 1 << (src.width - 1)
                    full = 1 << src.width
                    body.append(f"_v = {value}")
                    body.append(
                        f"regs[{ops[0].code}] = (_v - {full}) & M if _v >= {sign} else _v"
                    )
                set_eip_if_final()
                return True
            if (
                isinstance(src, Mem)
                and src.width in (8, 16)
                and _mem_regs_ok(src)
            ):
                guarded_load(src, "_v")
                if m == "movzx":
                    body.append(f"regs[{ops[0].code}] = _v")
                else:
                    sign = 1 << (src.width - 1)
                    full = 1 << src.width
                    body.append(
                        f"regs[{ops[0].code}] = (_v - {full}) & M if _v >= {sign} else _v"
                    )
                return True
            return False

        if m == "lea" and _is_r32(ops[0]) and isinstance(ops[1], Mem):
            if not _mem_regs_ok(ops[1]):
                return False
            body.append(f"regs[{ops[0].code}] = {_ea_expr(ops[1])}")
            set_eip_if_final()
            return True

        # ---- stack --------------------------------------------------
        if m == "push" and len(ops) == 1 and (_is_r32(ops[0]) or isinstance(ops[0], Imm)):
            value = (
                f"regs[{ops[0].code}]" if _is_r32(ops[0]) else str(_imm32(ops[0]))
            )
            body.append(f"cpu.eip = {nxt}")
            body.append(f"_v = {value}")  # read before esp moves (push esp)
            body.append("_s = (regs[4] - 4) & M")
            body.append("regs[4] = _s")
            self._store32(body, "_s", "_v")  # unwrapped, like Emulator.push
            return True

        if m == "pop" and len(ops) == 1 and _is_r32(ops[0]):
            body.append(f"cpu.eip = {nxt}")
            body.append("_s = regs[4]")
            self._load32(body, "_s", "_v")  # unwrapped, like Emulator.pop
            body.append("regs[4] = (_s + 4) & M")
            body.append(f"regs[{ops[0].code}] = _v")
            return True

        if m == "leave" and not ops:
            body.append(f"cpu.eip = {nxt}")
            body.append("_s = regs[5]")
            body.append("regs[4] = _s")  # esp = ebp even if the pop faults
            self._load32(body, "_s", "_v")
            body.append("regs[4] = (_s + 4) & M")
            body.append("regs[5] = _v")
            return True

        # ---- control flow (terminators / side exits) ----------------
        if m == "ret" and (not ops or isinstance(ops[0], Imm)):
            extra = 4 + (ops[0].value if ops else 0)
            body.append(f"cpu.eip = {nxt}")
            body.append("_s = regs[4]")
            self._load32(body, "_s", "_t")
            body.append(f"regs[4] = (_s + {extra}) & M")
            body.append("cpu.eip = _t")
            body.append("_r = emu._ras")
            body.append("if _r and _r[-1] == _t:")
            body.append("    _r.pop()")
            body.append("else:")
            body.append("    if _r:")
            body.append("        _r.pop()")
            body.append("    emu.ret_mispredicts += 1")
            body.append("    emu.cycles += RMP")
            return True

        if m == "jmp" and isinstance(ops[0], Rel) and ops[0].target is not None:
            body.append(f"cpu.eip = {ops[0].target & MASK32}")
            return True

        if m == "call" and isinstance(ops[0], Rel) and ops[0].target is not None:
            body.append(f"cpu.eip = {nxt}")
            body.append("_s = (regs[4] - 4) & M")
            body.append("regs[4] = _s")
            self._store32(body, "_s", str(nxt))
            body.append("_r = emu._ras")
            body.append("if len(_r) >= RASD:")
            body.append("    del _r[0]")
            body.append(f"_r.append({nxt})")
            body.append(f"cpu.eip = {ops[0].target & MASK32}")
            return True

        if (
            m in CONDITIONAL_JUMPS
            and isinstance(ops[0], Rel)
            and ops[0].target is not None
        ):
            cond = _CC_EXPR[m[1:]]
            target = ops[0].target & MASK32
            if final:
                body.append(f"cpu.eip = {target} if {cond} else {nxt}")
            else:
                body.append(f"if {cond}:")  # side exit; else fall through
                body.append(f"    cpu.eip = {target}")
                body.append(f"    emu.steps += {i + 1}")
                body.append(f"    emu.cycles += {cum}")
                body.append("    return")
            return True

        # ---- ALU ----------------------------------------------------
        if (
            m in ("add", "adc", "sub", "sbb", "cmp")
            and len(ops) == 2
            and _is_r32(ops[0])
        ):
            src = alu_src_expr(ops[1])
            if src is None:
                if not _is_m32(ops[1]):
                    return False
                guarded_load(ops[1], "_b")
                src = "_b"
            d = ops[0].code
            body.append(f"_a = regs[{d}]")
            if src != "_b":
                body.append(f"_b = {src}")
            if m in ("add", "adc"):
                carry = " + cpu.cf" if m == "adc" else ""
                body.append(f"_raw = _a + _b{carry}")
                body.append("_res = _raw & M")
                body.append("cpu.cf = _raw > M")
                body.append("cpu.of = bool((~(_a ^ _b)) & (_a ^ _res) & 0x80000000)")
            else:  # sub / sbb / cmp
                borrow = " - cpu.cf" if m == "sbb" else ""
                body.append(f"_raw = _a - _b{borrow}")
                body.append("_res = _raw & M")
                body.append("cpu.cf = _raw < 0")
                body.append("cpu.of = bool((_a ^ _b) & (_a ^ _res) & 0x80000000)")
            body.append("cpu.zf = _res == 0")
            body.append("cpu.sf = _res >= 0x80000000")
            if m != "cmp":
                body.append(f"regs[{d}] = _res")
            if src != "_b":  # memory source already pinned eip
                set_eip_if_final()
            return True

        if m in _LOGIC_OPS and len(ops) == 2 and _is_r32(ops[0]):
            src = alu_src_expr(ops[1])
            if src is None:
                if not _is_m32(ops[1]):
                    return False
                guarded_load(ops[1], "_b")
                src = "_b"
            d = ops[0].code
            body.append(f"_res = regs[{d}] {_LOGIC_OPS[m]} {src}")
            body.append("cpu.cf = False")
            body.append("cpu.of = False")
            body.append("cpu.zf = _res == 0")
            body.append("cpu.sf = _res >= 0x80000000")
            body.append(f"regs[{d}] = _res")
            if src != "_b":
                set_eip_if_final()
            return True

        if m == "test" and len(ops) == 2 and _is_r32(ops[0]):
            src = alu_src_expr(ops[1])
            if src is None:
                if not _is_m32(ops[1]):
                    return False
                guarded_load(ops[1], "_b")
                src = "_b"
            body.append(f"_res = regs[{ops[0].code}] & {src}")
            body.append("cpu.cf = False")
            body.append("cpu.of = False")
            body.append("cpu.zf = _res == 0")
            body.append("cpu.sf = _res >= 0x80000000")
            if src != "_b":
                set_eip_if_final()
            return True

        if m in ("inc", "dec") and len(ops) == 1 and _is_r32(ops[0]):
            d = ops[0].code
            if m == "inc":
                body.append(f"_res = (regs[{d}] + 1) & M")
                body.append("cpu.of = _res == 0x80000000")
            else:
                body.append(f"_res = (regs[{d}] - 1) & M")
                body.append("cpu.of = _res == 0x7FFFFFFF")
            body.append("cpu.zf = _res == 0")  # CF preserved, as on hardware
            body.append("cpu.sf = _res >= 0x80000000")
            body.append(f"regs[{d}] = _res")
            set_eip_if_final()
            return True

        if m == "neg" and len(ops) == 1 and _is_r32(ops[0]):
            d = ops[0].code
            body.append(f"_a = regs[{d}]")
            body.append("_res = (-_a) & M")
            body.append("cpu.cf = _a != 0")
            body.append("cpu.of = bool(_a & _res & 0x80000000)")
            body.append("cpu.zf = _res == 0")
            body.append("cpu.sf = _res >= 0x80000000")
            body.append(f"regs[{d}] = _res")
            set_eip_if_final()
            return True

        if m == "not" and len(ops) == 1 and _is_r32(ops[0]):
            d = ops[0].code
            body.append(f"regs[{d}] = ~regs[{d}] & M")  # flags untouched
            set_eip_if_final()
            return True

        if (
            m in ("shl", "shr", "sar")
            and len(ops) == 2
            and _is_r32(ops[0])
            and isinstance(ops[1], Imm)
        ):
            count = ops[1].value & 0x1F
            d = ops[0].code
            if count == 0:
                set_eip_if_final()
                return True  # no flag/register change, like the handler
            body.append(f"_v = regs[{d}]")
            if m == "shl":
                body.append(f"_res = (_v << {count}) & M")
                body.append(f"cpu.cf = bool((_v >> {32 - count}) & 1)")
            elif m == "shr":
                body.append(f"_res = _v >> {count}")
                body.append(f"cpu.cf = bool((_v >> {count - 1}) & 1)")
            else:  # sar (count < 32)
                body.append("_sv = _v - 0x100000000 if _v >= 0x80000000 else _v")
                body.append(f"cpu.cf = bool((_sv >> {count - 1}) & 1)")
                body.append(f"_res = (_sv >> {count}) & M")
            body.append("cpu.zf = _res == 0")
            body.append("cpu.sf = _res >= 0x80000000")
            body.append(f"regs[{d}] = _res")
            set_eip_if_final()
            return True

        if m == "cdq" and not ops:
            body.append("regs[2] = M if regs[0] & 0x80000000 else 0")
            set_eip_if_final()
            return True

        if m == "nop":
            set_eip_if_final()
            return True

        return False
