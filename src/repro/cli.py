"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list``                      — corpus programs and their stats;
* ``run PROGRAM``               — execute a corpus program;
* ``protect PROGRAM``           — protect and re-run it, print report;
* ``profile PROGRAM``           — per-function cycle attribution table;
* ``analyze PROGRAM``           — Fig. 6 protectability for one program;
* ``fig6``                      — the full Fig. 6 table;
* ``attack PROGRAM``            — static + Wurster tamper demo;
* ``coverage PROGRAM``          — protection-coverage map: annotated
  disassembly (or ``--json`` artifact) of which protected bytes each
  verification chain guards, single-point-of-failure bytes, and
  uncovered regions;
* ``protect-all``               — protect the whole corpus, optionally
  in parallel (``--jobs``) and cached on disk (``--cache-dir``);
* ``serve``                     — protection-as-a-service daemon:
  protect / verify / attack-matrix over HTTP with single-flight
  deduplication, a sharded response cache, per-tenant quotas, batched
  pool scheduling, and ``/metrics`` + ``/stats`` + ``/journal``
  introspection;
* ``stats ARTIFACT...``         — human dashboard over any exported
  telemetry artifact (metrics JSON, span/journal JSONL, Chrome trace);
* ``top JOURNAL``               — live, self-refreshing dashboard over
  another command's ``--journal-follow`` NDJSON stream.

Observability: the heavier commands take ``--metrics FILE`` (metrics
JSON), ``--trace FILE`` (span JSONL), ``--chrome-trace FILE``
(Perfetto-loadable trace-event JSON), ``--prom FILE`` (Prometheus text
format), ``--journal FILE`` (flight-recorder event JSONL) and
``--journal-follow FILE`` (the same events streamed live as NDJSON);
``-`` writes the on-exit exports to stdout.  ``--label KEY=VALUE``
(repeatable) runs the command under a labeled telemetry context, and
``--recorder-events N`` sizes the flight-recorder ring.  Exports run
even when the command faults — and from SIGTERM/SIGINT handlers when
it is killed — so a dying run still leaves its artifacts behind.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys

from . import telemetry
from .core import Parallax, ProtectConfig, STRATEGIES
from .corpus import PROGRAM_NAMES, build_program
from .rewrite import RewriteEngine, format_fig6_table


def _add_engine_arg(parser: argparse.ArgumentParser) -> None:
    from .emu import DEFAULT_ENGINE, ENGINE_DESCRIPTIONS, ENGINES

    parser.add_argument(
        "--engine", choices=ENGINES, default=DEFAULT_ENGINE,
        help="execution engine: " + "; ".join(
            f"'{name}': {ENGINE_DESCRIPTIONS[name]}" for name in ENGINES
        ),
    )


def _add_telemetry_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics", metavar="FILE", default=None,
        help="export a metrics JSON on exit ('-' for stdout)",
    )
    parser.add_argument(
        "--trace", metavar="FILE", default=None,
        help="export structured spans as JSONL on exit ('-' for stdout)",
    )
    parser.add_argument(
        "--chrome-trace", metavar="FILE", default=None,
        help="export spans as Chrome trace-event JSON "
        "(loadable in Perfetto / chrome://tracing)",
    )
    parser.add_argument(
        "--prom", metavar="FILE", default=None,
        help="export metrics in Prometheus text format",
    )
    parser.add_argument(
        "--journal", metavar="FILE", default=None,
        help="enable the flight recorder and export its event journal "
        "as JSONL on exit (written even if the command faults)",
    )
    parser.add_argument(
        "--journal-follow", metavar="FILE", default=None,
        help="enable the flight recorder and stream events to FILE as "
        "NDJSON while the command runs — point 'repro top FILE' at it "
        "from another terminal for a live dashboard",
    )
    parser.add_argument(
        "--recorder-events", type=int, default=None, metavar="N",
        help="flight-recorder ring capacity (default: "
        "$REPRO_RECORDER_EVENTS or 8192)",
    )
    parser.add_argument(
        "--label", action="append", default=None, metavar="KEY=VALUE",
        help="run under a labeled telemetry context; repeatable "
        "(e.g. --label request=r1 --label tenant=acme) — exported "
        "metrics and journal events carry the labels",
    )


def _export_telemetry(args, metrics, tracer) -> None:
    if metrics.enabled and telemetry.get_recorder().enabled:
        # Stamp the recorder's own sampled cost into the artifact, so
        # exported metrics carry the price of their own collection.
        from .telemetry.overhead import self_accounting

        self_accounting(metrics)

    trace_path = getattr(args, "trace", None)
    if trace_path == "-":
        for event in tracer.to_events():
            print(json.dumps(event))
    elif trace_path is not None:
        tracer.write_jsonl(trace_path)

    chrome_path = getattr(args, "chrome_trace", None)
    if chrome_path == "-":
        print(json.dumps(telemetry.chrome_trace(tracer.to_events())))
    elif chrome_path is not None:
        telemetry.write_chrome_trace(tracer, chrome_path)

    journal_path = getattr(args, "journal", None)
    if journal_path == "-":
        telemetry.get_recorder().dump(sys.stdout)
    elif journal_path is not None:
        telemetry.get_recorder().write_jsonl(journal_path)

    prom_path = getattr(args, "prom", None)
    if prom_path == "-":
        sys.stdout.write(telemetry.prometheus_text(metrics))
    elif prom_path is not None:
        telemetry.write_prometheus(metrics, prom_path)

    metrics_path = getattr(args, "metrics", None)
    if metrics_path == "-":
        print(metrics.to_json())
    elif metrics_path is not None:
        metrics.write_json(metrics_path)


def _parse_labels(pairs):
    labels = {}
    for pair in pairs or ():
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"--label expects KEY=VALUE, got {pair!r}")
        labels[key] = value
    return labels


def _start_journal_follow(args):
    """Stream recorder events to ``--journal-follow FILE`` as NDJSON.

    Line-buffered and written from a recorder subscription, so a
    ``repro top`` tailing the file sees events within one line of them
    happening.  Returns ``(recorder, callback, fh)`` for teardown.
    """
    path = getattr(args, "journal_follow", None)
    if path is None:
        return None
    from .telemetry.metrics import _ensure_parent_dir

    _ensure_parent_dir(path)
    fh = open(path, "w", buffering=1)
    recorder = telemetry.get_recorder()

    def write(event):
        fh.write(json.dumps(event, sort_keys=True))
        fh.write("\n")

    recorder.subscribe(write)
    return recorder, write, fh


def _stop_journal_follow(stream) -> None:
    if stream is None:
        return
    recorder, write, fh = stream
    recorder.unsubscribe(write)
    # Trailing summary line tells a following `repro top` the run is
    # over (it stops refreshing) and carries the drop count.
    fh.write(json.dumps(recorder.summary(), sort_keys=True))
    fh.write("\n")
    fh.close()


def _install_signal_dumps(args, metrics, tracer):
    """Dump telemetry artifacts on SIGTERM/SIGINT, then die normally.

    A ``finally`` covers exceptions but not signals — SIGTERM kills the
    interpreter without unwinding, losing the journal exactly when it
    is most wanted.  The handler exports everything the flags asked
    for, restores the previous disposition and re-raises the signal so
    exit codes stay honest.  Returns a restore callback.
    """
    import signal
    import threading

    if threading.current_thread() is not threading.main_thread():
        return lambda: None
    previous = {}

    def handler(signum, _frame):
        try:
            _export_telemetry(args, metrics, tracer)
        finally:
            signal.signal(signum, previous.get(signum, signal.SIG_DFL))
            signal.raise_signal(signum)

    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[sig] = signal.signal(sig, handler)
        except (ValueError, OSError):
            pass

    def restore():
        for sig, old in previous.items():
            try:
                signal.signal(sig, old)
            except (ValueError, OSError):
                pass

    return restore


@contextlib.contextmanager
def _telemetry_from_args(args):
    """Enable telemetry per the export flags and export on exit.

    Exports happen in a ``finally`` so a faulting command still leaves
    its artifacts behind, and additionally from SIGTERM/SIGINT handlers
    so a killed run does too.  ``--label KEY=VALUE`` wraps the command
    in a :class:`~repro.telemetry.TelemetryContext`, labeling every
    metric sample and journal event it produces.
    """
    want_metrics = (
        getattr(args, "metrics", None) is not None
        or getattr(args, "prom", None) is not None
    )
    want_tracing = (
        getattr(args, "trace", None) is not None
        or getattr(args, "chrome_trace", None) is not None
    )
    want_recorder = (
        getattr(args, "journal", None) is not None
        or getattr(args, "journal_follow", None) is not None
    )
    labels = _parse_labels(getattr(args, "label", None))
    if not (want_metrics or want_tracing or want_recorder):
        yield
        return
    with telemetry.telemetry_session(
        metrics=want_metrics,
        tracing=want_tracing,
        recorder=want_recorder,
        recorder_capacity=getattr(args, "recorder_events", None),
    ) as (metrics, tracer):
        stream = _start_journal_follow(args) if want_recorder else None
        restore_signals = _install_signal_dumps(args, metrics, tracer)
        try:
            if labels:
                with telemetry.TelemetryContext(labels):
                    yield
            else:
                yield
        finally:
            restore_signals()
            _stop_journal_follow(stream)
            _export_telemetry(args, metrics, tracer)


def _cmd_list(_args) -> int:
    print(f"{'program':<8} {'functions':>10} {'code bytes':>11}")
    for name in PROGRAM_NAMES:
        program = build_program(name)
        print(f"{name:<8} {len(program.functions):>10} {program.code_size():>11}")
    return 0


def _cmd_run(args) -> int:
    program = build_program(args.program)
    result = program.run(debugger_attached=args.debugger, engine=args.engine)
    print(f"stdout : {result.stdout.decode(errors='replace')}")
    print(f"exit   : {result.exit_status}")
    print(f"steps  : {result.steps:,}   cycles: {result.cycles:,}")
    if result.crashed:
        print(f"FAULT  : {result.fault}")
        return 1
    return 0


def _cmd_protect(args) -> int:
    program = build_program(args.program)
    baseline = program.run(engine=args.engine)
    config = ProtectConfig(strategy=args.strategy, guard_chains=args.guard_chains)
    protected = Parallax(config, jobs=args.jobs).protect(program)
    result = protected.run(engine=args.engine)
    diverged = result.crashed or result.stdout != baseline.stdout
    overhead = 100 * (result.cycles / baseline.cycles - 1)
    if args.json:
        payload = protected.report.to_dict()
        payload["behaviour_preserved"] = not diverged
        payload["overhead_percent"] = round(overhead, 4)
        print(json.dumps(payload, indent=2))
    else:
        print(protected.report.summary())
    if diverged:
        if not args.json:
            print("ERROR: protected program diverged from baseline")
        return 1
    if not args.json:
        print(f"\nbehaviour preserved; whole-program overhead {overhead:.2f}%")
    return 0


def _cmd_profile(args) -> int:
    from .emu import HotspotProfiler, profile_run

    program = build_program(args.program)
    hotspots = HotspotProfiler()
    result, profiler = profile_run(
        program.image, debugger_attached=args.debugger, hotspots=hotspots,
        engine=args.engine,
    )
    print(profiler.report())
    print()
    print(hotspots.report())
    print(f"\ntotal: {result.steps:,} instructions, {result.cycles:,} cycles")
    if result.crashed:
        print(f"FAULT  : {result.fault}")
        return 1
    return 0


def _cmd_stats(args) -> int:
    status = 0
    for index, path in enumerate(args.artifacts):
        if index:
            print()
        try:
            kind, data = telemetry.load_artifact(path)
        except (OSError, ValueError, json.JSONDecodeError):
            kinds = ", ".join(telemetry.ARTIFACT_KINDS)
            print(
                f"{path}: not a recognized telemetry artifact "
                f"(expected one of: {kinds})",
                file=sys.stderr,
            )
            status = 2
            continue
        print(f"{path} [{kind}]")
        print(telemetry.render_stats(kind, data))
    return status


def _cmd_coverage(args) -> int:
    from .coverage import build_coverage, render_coverage
    from .telemetry.metrics import _ensure_parent_dir

    program = build_program(args.program)
    config = ProtectConfig(strategy=args.strategy, guard_chains=args.guard_chains)
    protected = Parallax(config).protect(program)
    coverage = build_coverage(
        protected.image, protected.report, classify_rules=not args.no_rules
    )
    payload = None
    if args.json or args.out:
        payload = json.dumps(coverage.to_dict(), indent=2, sort_keys=True)
    if args.out:
        _ensure_parent_dir(args.out)
        with open(args.out, "w") as fh:
            fh.write(payload)
            fh.write("\n")
    if args.json:
        print(payload)
    else:
        print(render_coverage(
            coverage,
            max_functions=args.max_functions,
            max_insns=args.max_insns,
        ))
    if coverage.protected_bytes and not coverage.covered_bytes:
        # Chains were emitted but none of them overlap the protected
        # bytes — the implicit-verification premise failed for this
        # protection; surface it as a failure for scripting.
        print("ERROR: no protected byte is covered by any chain",
              file=sys.stderr)
        return 1
    return 0


def _cmd_analyze(args) -> int:
    program = build_program(args.program)
    report = RewriteEngine().analyze(program.image).report
    print(format_fig6_table([report]))
    return 0


def _cmd_fig6(_args) -> int:
    engine = RewriteEngine()
    reports = [
        engine.analyze(build_program(name).image).report for name in PROGRAM_NAMES
    ]
    print(format_fig6_table(reports))
    return 0


def _cmd_protect_all(args) -> int:
    from .pipeline import protect_all

    config = ProtectConfig(strategy=args.strategy, guard_chains=args.guard_chains)
    results = protect_all(
        config=config,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        verify=args.verify,
    )
    failed = [
        r for r in results
        if r.behaviour_preserved is not None and not r.behaviour_preserved
    ]
    if args.json:
        print(json.dumps([r.to_dict() for r in results], indent=2))
        return 1 if failed else 0
    total = sum(r.elapsed for r in results)
    hits = sum(1 for r in results if r.cache_hit)
    print(f"{'program':<8} {'chains':>6} {'time':>8}  {'cache':<5} {'pid':>7}")
    for r in results:
        verified = ""
        if r.behaviour_preserved is not None:
            verified = "  ok" if r.behaviour_preserved else "  DIVERGED"
        print(
            f"{r.name:<8} {len(r.report.chains):>6} {r.elapsed:>7.3f}s  "
            f"{'hit' if r.cache_hit else 'miss':<5} {r.worker_pid:>7}{verified}"
        )
    print(
        f"\n{len(results)} programs in {total:.3f}s worker time "
        f"({hits} cache hit{'s' if hits != 1 else ''}, jobs={args.jobs})"
    )
    if failed:
        print(f"ERROR: {len(failed)} program(s) diverged from baseline")
        return 1
    return 0


def _cmd_serve(args) -> int:
    from .serve import ServeConfig, serve

    config = ServeConfig(
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        executor=args.executor,
        cache_dir=args.cache_dir,
        queue_depth=args.queue_depth,
        batch_max=args.batch_max,
        quota_rate=args.quota_rate,
        quota_burst=args.quota_burst,
        window_seconds=args.window,
        drain_timeout=args.drain_timeout,
    )

    def announce(server) -> None:
        print(
            f"repro serve: listening on http://{config.host}:{server.port} "
            f"(jobs={config.jobs}, executor={config.executor}, "
            f"batch_max={config.batch_max}, queue_depth={config.queue_depth})",
            flush=True,
        )
        if server.migrated_entries:
            print(
                f"repro serve: migrated {server.migrated_entries} cache "
                "entries to the sharded layout",
                flush=True,
            )

    return serve(config, announce=announce)


def _cmd_top(args) -> int:
    from .telemetry.top import run_top

    run_top(
        args.journal,
        interval=args.interval,
        duration=args.duration,
        once=args.once,
        window_seconds=args.window,
    )
    return 0


def _cmd_attack(args) -> int:
    from .attacks import evaluate_patch_attack, evaluate_wurster_attack
    from .attacks.patching import corrupt_byte

    program = build_program(args.program)
    goal = program.run(engine=args.engine)
    config = ProtectConfig(strategy=args.strategy)
    protected = Parallax(config).protect(program)
    image = protected.image
    target = next(
        addr
        for addr in protected.report.chains[0].gadget_addresses
        if image.section_at(addr).name == ".text"
    )
    patch = corrupt_byte(image, target)
    print(f"tampering one byte of a chain gadget at {target:#x}")
    static = evaluate_patch_attack(image, [patch], goal, "static")
    wurster = evaluate_wurster_attack(image, [patch], goal, "wurster")
    print(f"static  patch: {'DETECTED' if static.detected else 'undetected'} "
          f"({static.reason})")
    print(f"wurster patch: {'DETECTED' if wurster.detected else 'undetected'} "
          f"({wurster.reason})")
    return 0 if static.detected and wurster.detected else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Parallax (DSN 2015) reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the corpus programs").set_defaults(
        func=_cmd_list
    )

    p_run = sub.add_parser("run", help="run a corpus program")
    p_run.add_argument("program", choices=PROGRAM_NAMES)
    _add_engine_arg(p_run)
    p_run.add_argument("--debugger", action="store_true",
                       help="attach the (simulated) debugger")
    _add_telemetry_args(p_run)
    p_run.set_defaults(func=_cmd_run)

    p_protect = sub.add_parser("protect", help="protect a program and re-run it")
    p_protect.add_argument("program", choices=PROGRAM_NAMES)
    p_protect.add_argument("--strategy", choices=STRATEGIES, default="cleartext")
    _add_engine_arg(p_protect)
    p_protect.add_argument("--jobs", type=int, default=1, metavar="N",
                           help="worker processes for the gadget finder's "
                                "per-section scans (output is identical "
                                "for any value)")
    p_protect.add_argument("--guard-chains", action="store_true",
                           help="enable the §VI-C chain-guard network")
    p_protect.add_argument("--json", action="store_true",
                           help="print the protection report as JSON")
    _add_telemetry_args(p_protect)
    p_protect.set_defaults(func=_cmd_protect)

    p_profile = sub.add_parser(
        "profile", help="per-function cycle attribution for one run"
    )
    p_profile.add_argument("program", choices=PROGRAM_NAMES)
    p_profile.add_argument("--debugger", action="store_true",
                           help="attach the (simulated) debugger")
    _add_engine_arg(p_profile)
    _add_telemetry_args(p_profile)
    p_profile.set_defaults(func=_cmd_profile)

    p_cov = sub.add_parser(
        "coverage",
        help="protection-coverage map: which bytes do the chains guard?",
    )
    p_cov.add_argument("program", choices=PROGRAM_NAMES)
    p_cov.add_argument("--strategy", choices=STRATEGIES, default="cleartext")
    p_cov.add_argument("--guard-chains", action="store_true",
                       help="enable the §VI-C chain-guard network")
    p_cov.add_argument("--json", action="store_true",
                       help="print the coverage artifact as JSON")
    p_cov.add_argument("--out", metavar="FILE", default=None,
                       help="also write the JSON artifact to FILE "
                            "(parent directories are created)")
    p_cov.add_argument("--no-rules", action="store_true",
                       help="skip the Fig. 6 rewrite-rule classification "
                            "of covering gadgets (faster)")
    p_cov.add_argument("--max-functions", type=int, default=0, metavar="N",
                       help="annotate at most N functions (0 = all)")
    p_cov.add_argument("--max-insns", type=int, default=0, metavar="N",
                       help="annotate at most N protected instructions "
                            "per function (0 = all)")
    _add_telemetry_args(p_cov)
    p_cov.set_defaults(func=_cmd_coverage)

    p_analyze = sub.add_parser("analyze", help="Fig. 6 protectability for one program")
    p_analyze.add_argument("program", choices=PROGRAM_NAMES)
    p_analyze.set_defaults(func=_cmd_analyze)

    sub.add_parser("fig6", help="the full Fig. 6 table").set_defaults(func=_cmd_fig6)

    p_all = sub.add_parser(
        "protect-all", help="protect the whole corpus (parallel, cached)"
    )
    p_all.add_argument("--strategy", choices=STRATEGIES, default="cleartext")
    p_all.add_argument("--guard-chains", action="store_true",
                       help="enable the §VI-C chain-guard network")
    p_all.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes (default: 1, inline)")
    p_all.add_argument("--cache-dir", metavar="DIR", default=None,
                       help="enable the on-disk cache tier at DIR")
    p_all.add_argument("--no-cache", action="store_true",
                       help="force full recomputation (disable all caching)")
    p_all.add_argument("--verify", action="store_true",
                       help="also run each protected program and compare "
                            "behaviour against its baseline (slow)")
    p_all.add_argument("--json", action="store_true",
                       help="print per-program results as JSON")
    _add_telemetry_args(p_all)
    p_all.set_defaults(func=_cmd_protect_all)

    p_serve = sub.add_parser(
        "serve", help="protection-as-a-service HTTP daemon"
    )
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default: 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=8437,
                         help="bind port; 0 picks an ephemeral port "
                              "(default: 8437)")
    p_serve.add_argument("--jobs", type=int, default=2, metavar="N",
                         help="worker pool size (default: 2)")
    p_serve.add_argument("--executor", choices=("process", "thread"),
                         default="process",
                         help="worker pool kind (default: process)")
    p_serve.add_argument("--cache-dir", metavar="DIR", default=None,
                         help="sharded on-disk response/protect cache at DIR "
                              "(default: $REPRO_CACHE_DIR, else memory-only)")
    p_serve.add_argument("--queue-depth", type=int, default=64, metavar="N",
                         help="max pending jobs before 429 backpressure "
                              "(default: 64)")
    p_serve.add_argument("--batch-max", type=int, default=4, metavar="N",
                         help="max jobs packed into one pool dispatch "
                              "(default: 4)")
    p_serve.add_argument("--quota-rate", type=float, default=0.0,
                         metavar="PER_SECOND",
                         help="per-tenant token-bucket refill rate "
                              "(default: 0 = unlimited)")
    p_serve.add_argument("--quota-burst", type=float, default=None,
                         metavar="TOKENS",
                         help="per-tenant burst capacity "
                              "(default: max(1, 2x rate))")
    p_serve.add_argument("--window", type=float, default=30.0,
                         metavar="SECONDS",
                         help="rolling-window width for /stats "
                              "(default: 30s)")
    p_serve.add_argument("--drain-timeout", type=float, default=30.0,
                         metavar="SECONDS",
                         help="max seconds to wait for in-flight requests "
                              "on shutdown (default: 30s)")
    _add_telemetry_args(p_serve)
    p_serve.set_defaults(func=_cmd_serve)

    p_stats = sub.add_parser(
        "stats", help="dashboard over exported telemetry artifacts"
    )
    p_stats.add_argument(
        "artifacts", nargs="+", metavar="ARTIFACT",
        help="metrics JSON, span/journal JSONL, or Chrome trace files",
    )
    p_stats.set_defaults(func=_cmd_stats)

    p_top = sub.add_parser(
        "top", help="live dashboard over a run's --journal-follow stream"
    )
    p_top.add_argument(
        "journal", metavar="JOURNAL",
        help="NDJSON journal file another repro command is writing via "
        "--journal-follow (a finished journal renders post-hoc)",
    )
    p_top.add_argument("--interval", type=float, default=1.0, metavar="SECONDS",
                       help="refresh interval (default: 1s)")
    p_top.add_argument("--duration", type=float, default=None, metavar="SECONDS",
                       help="stop after this long (default: until the "
                       "producing run finishes or Ctrl-C)")
    p_top.add_argument("--once", action="store_true",
                       help="render one frame from the journal's current "
                       "content and exit (no screen clearing)")
    p_top.add_argument("--window", type=float, default=30.0, metavar="SECONDS",
                       help="rolling-window width for rates and "
                       "percentiles (default: 30s)")
    p_top.set_defaults(func=_cmd_top)

    p_attack = sub.add_parser("attack", help="tamper demo on a protected program")
    p_attack.add_argument("program", choices=PROGRAM_NAMES)
    p_attack.add_argument("--strategy", choices=STRATEGIES, default="cleartext")
    _add_engine_arg(p_attack)
    _add_telemetry_args(p_attack)
    p_attack.set_defaults(func=_cmd_attack)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    with _telemetry_from_args(args):
        return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
