"""Byte-granular protection-coverage maps.

A protected byte is *covered* when it falls inside the span of a gadget
some verification chain dispatches through — tampering it corrupts that
gadget and the chain malfunctions (§III).  A byte covered by exactly
one chain is a *single point of failure* (SPOF): defeat that one chain
and the byte is unguarded.  Bytes the protector was asked to guard but
no chain's gadgets overlap are *uncovered* — the residual attack
surface the paper's §VII-A protectability limits predict.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from ..binary.image import BinaryImage
from ..core.report import ProtectionReport, coalesce_addresses

#: artifact discriminator consumed by ``telemetry.load_artifact``
ARTIFACT_TYPE = "coverage"


class FunctionCoverage:
    """Coverage statistics for one function symbol."""

    __slots__ = (
        "name",
        "vaddr",
        "size",
        "protected_bytes",
        "covered_bytes",
        "spof_bytes",
        "max_depth",
    )

    def __init__(self, name: str, vaddr: int, size: int):
        self.name = name
        self.vaddr = vaddr
        self.size = size
        self.protected_bytes = 0
        self.covered_bytes = 0
        self.spof_bytes = 0
        self.max_depth = 0

    @property
    def coverage_fraction(self) -> float:
        if not self.protected_bytes:
            return 0.0
        return self.covered_bytes / self.protected_bytes

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "vaddr": self.vaddr,
            "size": self.size,
            "protected_bytes": self.protected_bytes,
            "covered_bytes": self.covered_bytes,
            "coverage_fraction": round(self.coverage_fraction, 6),
            "spof_bytes": self.spof_bytes,
            "max_depth": self.max_depth,
        }


class CoverageMap:
    """The static half of the integrity observatory.

    Attributes:
        program: protected program name.
        strategy: protection strategy the report came from.
        chain_names: chain identifiers, index-aligned with the chain
            bitsets in :attr:`chains_at`.
        depth: ``{protected byte: number of chains guarding it}``
            (0 entries are omitted — absence means uncovered).
        chains_at: ``{protected byte: sorted tuple of chain indices}``.
        rule_of: optional ``{gadget address: rewrite-rule name}`` used
            for the per-rule guarded-byte breakdown.
    """

    def __init__(
        self,
        image: BinaryImage,
        report: ProtectionReport,
        rule_of: Optional[Dict[int, str]] = None,
    ):
        self.program = report.program
        self.strategy = report.strategy
        self.image = image
        self.report = report
        self.rule_of = dict(rule_of or {})

        self.protected: List[int] = sorted(set(report.protected_addresses))
        protected_set = set(self.protected)

        self.chain_names: List[str] = [rec.function for rec in report.chains]
        self.depth: Dict[int, int] = {}
        self.chains_at: Dict[int, Tuple[int, ...]] = {}
        #: ``{rule name: guarded protected-byte count}``
        self.rule_breakdown: Dict[str, int] = {}

        builder: Dict[int, List[int]] = {}
        rule_bytes: Dict[str, set] = {}
        for index, record in enumerate(report.chains):
            for address, end in record.gadget_spans.items():
                rule = self.rule_of.get(address)
                for byte in range(address, end):
                    if byte not in protected_set:
                        continue
                    chains = builder.setdefault(byte, [])
                    if index not in chains:
                        chains.append(index)
                    if rule is not None:
                        rule_bytes.setdefault(rule, set()).add(byte)
        self.rule_breakdown = {
            rule: len(bytes_) for rule, bytes_ in rule_bytes.items()
        }
        for byte, chains in builder.items():
            chains.sort()
            self.chains_at[byte] = tuple(chains)
            self.depth[byte] = len(chains)

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------

    @property
    def protected_bytes(self) -> int:
        return len(self.protected)

    @property
    def covered_bytes(self) -> int:
        return len(self.depth)

    @property
    def coverage_fraction(self) -> float:
        """Fraction of protected bytes guarded by at least one chain."""
        if not self.protected:
            return 0.0
        return self.covered_bytes / self.protected_bytes

    @property
    def overlap_density(self) -> float:
        """Mean number of chains guarding each covered byte."""
        if not self.depth:
            return 0.0
        return sum(self.depth.values()) / len(self.depth)

    def spof_addresses(self) -> List[int]:
        """Protected bytes guarded by exactly one chain."""
        return sorted(b for b, d in self.depth.items() if d == 1)

    def uncovered_addresses(self) -> List[int]:
        """Protected bytes no chain's gadgets overlap."""
        return sorted(b for b in self.protected if b not in self.depth)

    def spof_regions(self) -> List[Tuple[int, int]]:
        return coalesce_addresses(self.spof_addresses())

    def uncovered_regions(self) -> List[Tuple[int, int]]:
        return coalesce_addresses(self.uncovered_addresses())

    def depth_at(self, address: int) -> int:
        return self.depth.get(address, 0)

    # ------------------------------------------------------------------
    # Per-function view
    # ------------------------------------------------------------------

    def functions(self) -> List[FunctionCoverage]:
        """Coverage per function symbol, address order; functions with
        no protected bytes are omitted."""
        out: List[FunctionCoverage] = []
        for sym in self.image.symbols.functions():
            fc = FunctionCoverage(sym.name, sym.vaddr, sym.size)
            for byte in range(sym.vaddr, sym.end):
                if byte not in self._protected_set:
                    continue
                fc.protected_bytes += 1
                d = self.depth.get(byte, 0)
                if d:
                    fc.covered_bytes += 1
                    fc.max_depth = max(fc.max_depth, d)
                if d == 1:
                    fc.spof_bytes += 1
            if fc.protected_bytes:
                out.append(fc)
        return out

    @property
    def _protected_set(self) -> set:
        cached = getattr(self, "_protected_set_cache", None)
        if cached is None:
            cached = set(self.protected)
            self._protected_set_cache = cached
        return cached

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def byte_map(self) -> List[List]:
        """Run-length encoded map: ``[start, length, depth, chains]``
        rows over the protected byte range, where ``chains`` lists
        indices into :attr:`chain_names`.  Adjacent bytes with the same
        guarding-chain set fold into one row, so the encoding is exact
        yet compact."""
        rows: List[List] = []
        run_start = None
        run_prev = None
        run_chains: Tuple[int, ...] = ()
        for byte in self.protected:
            chains = self.chains_at.get(byte, ())
            if run_start is not None and byte == run_prev + 1 and chains == run_chains:
                run_prev = byte
                continue
            if run_start is not None:
                rows.append(
                    [run_start, run_prev - run_start + 1,
                     len(run_chains), list(run_chains)]
                )
            run_start = run_prev = byte
            run_chains = chains
        if run_start is not None:
            rows.append(
                [run_start, run_prev - run_start + 1,
                 len(run_chains), list(run_chains)]
            )
        return rows

    def to_dict(self) -> dict:
        spof = self.spof_addresses()
        return {
            "type": ARTIFACT_TYPE,
            "program": self.program,
            "strategy": self.strategy,
            "chains": self.chain_names,
            "protected_bytes": self.protected_bytes,
            "covered_bytes": self.covered_bytes,
            "coverage_fraction": round(self.coverage_fraction, 6),
            "overlap_density": round(self.overlap_density, 6),
            "spof_bytes": len(spof),
            "spof_regions": [list(r) for r in self.spof_regions()],
            "uncovered_bytes": len(self.protected) - self.covered_bytes,
            "uncovered_regions": [list(r) for r in self.uncovered_regions()],
            "rule_breakdown": dict(sorted(self.rule_breakdown.items())),
            "functions": [fc.to_dict() for fc in self.functions()],
            "byte_map": self.byte_map(),
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def __repr__(self) -> str:
        return (
            f"<CoverageMap {self.program} {self.covered_bytes}/"
            f"{self.protected_bytes} bytes covered "
            f"({100 * self.coverage_fraction:.1f}%)>"
        )


def build_coverage(
    image: BinaryImage,
    report: ProtectionReport,
    classify_rules: bool = True,
) -> CoverageMap:
    """Build the coverage map for a protected image.

    ``classify_rules`` additionally runs the rewrite engine over the
    *protected* image to attribute guarded bytes to the §IV-B rule
    family producing each gadget (skip it when only the coverage
    fractions matter — the analysis pass is the expensive part).
    """
    rule_of: Optional[Dict[int, str]] = None
    if classify_rules:
        from ..rewrite.engine import RewriteEngine

        rule_of = RewriteEngine().classify_gadgets(image)
    return CoverageMap(image, report, rule_of=rule_of)
