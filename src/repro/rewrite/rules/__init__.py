"""The binary rewriting rules of §IV-B, one module per rule family."""

from .existing import ExistingGadgetRule, FarReturnRule
from .immediates import ImmediateCandidate, ImmediateModificationRule
from .jumps import JumpCandidate, JumpOffsetRule
from .spurious import SpuriousInstructionRule

__all__ = [
    "ExistingGadgetRule",
    "FarReturnRule",
    "ImmediateCandidate",
    "ImmediateModificationRule",
    "JumpCandidate",
    "JumpOffsetRule",
    "SpuriousInstructionRule",
]
